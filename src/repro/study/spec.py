"""Declarative study specifications — whole experiments as data.

PR 3 made a *round* declarative (:class:`~repro.engine.RoundSpec`);
this module lifts the same move one level up: a :class:`StudySpec`
names a whole experiment — which context, which scenario grid over
``DefenseSpec x AttackSpec x VictimSpec x fractions x seeds``, which
solver configuration — *by content*.  Three properties follow:

* **uniformity** — every experiment the repository knows (the Figure-1
  sweep, Table 1, the empirical and cross-family games, multi-seed
  aggregation, raw scenario grids) is one dataclass submitted to one
  entry point, :func:`repro.study.run_study`;
* **serialisability** — specs round-trip through a canonical JSON
  document (``study_to_json`` / ``study_from_json``), so an experiment
  can be archived, diffed, mailed to a service endpoint or replayed a
  year later;
* **addressability** — :meth:`StudySpec.fingerprint` is a stable
  content hash over everything that determines the results (engine
  placement — backend, jobs, cache location — is deliberately
  excluded: results are bit-identical across backends), which is what
  lets ``run_study(..., archive_dir=...)`` skip studies that already
  ran.

Spec strings accepted anywhere a spec object is expected use the
shared grammar of :func:`repro.engine.spec.parse_defense_spec` and
friends, so ``"radius:0.1"`` on a command line, in a study JSON and in
a builder call all mean the same defence.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.engine.spec import (AttackSpec, DefenseSpec, VictimSpec,
                               _tuplify, parse_attack_spec,
                               parse_defense_spec, parse_victim_spec)
from repro.utils.validation import (check_canonical_params, check_fraction,
                                    check_positive_int)

__all__ = [
    "STUDY_SCHEMA_VERSION",
    "STUDY_KINDS",
    "ContextSpec",
    "ScenarioGrid",
    "EngineConfig",
    "StudySpec",
    "study_to_json",
    "study_from_json",
]

# v1: the first serialised study document.  Bump when the document's
# meaning changes such that old fingerprints would misname new studies.
STUDY_SCHEMA_VERSION = 1

# The registered study kinds; repro.study.runner's dispatch table must
# cover exactly this set (a test enforces it).
STUDY_KINDS = frozenset({
    "figure1", "mixed_eval", "table1", "empirical_game", "cross_game",
    "multi_seed", "grid",
})


def _params_to_obj(params: tuple) -> dict:
    """Canonical params tuple -> plain JSON mapping.

    Only the *top* level becomes a JSON object (it is sorted by
    ``check_canonical_params`` at construction, so the mapping order is
    stable); every nested value — including a tuple of pairs such as
    table1's ``"algorithm"`` kwargs — dumps as plain nested lists.
    Dumping values as objects would force an order on reload and drift
    the fingerprint of any spec whose pair-tuple value was not sorted.
    """
    return {k: _value_to_obj(v) for k, v in params}


def _value_to_obj(value):
    if isinstance(value, tuple):
        return [_value_to_obj(v) for v in value]
    return value


def _value_from_obj(obj):
    if isinstance(obj, dict):
        return tuple(sorted((str(k), _value_from_obj(v))
                            for k, v in obj.items()))
    if isinstance(obj, list):
        return tuple(_value_from_obj(v) for v in obj)
    return obj


def _params_from_obj(obj, *, name: str) -> tuple:
    if obj is None:
        return ()
    if isinstance(obj, dict):
        return check_canonical_params(
            {k: _value_from_obj(v) for k, v in obj.items()}, name=name)
    return check_canonical_params(_tuplify(obj), name=name)


def _defense_from_obj(obj):
    if obj is None:
        return None
    if isinstance(obj, DefenseSpec):
        return obj
    if isinstance(obj, str):
        return parse_defense_spec(obj)
    if isinstance(obj, dict):
        return DefenseSpec(obj.get("kind", "radius"),
                           float(obj.get("percentile", 0.0)),
                           _params_from_obj(obj.get("params"),
                                            name="defense params"))
    raise TypeError(f"cannot read a DefenseSpec from {obj!r}")


def _attack_from_obj(obj):
    if obj is None:
        return None
    if isinstance(obj, AttackSpec):
        return obj
    if isinstance(obj, str):
        return parse_attack_spec(obj)
    if isinstance(obj, dict):
        return AttackSpec(obj.get("kind", "boundary"),
                          float(obj.get("percentile", 0.0)),
                          _params_from_obj(obj.get("params"),
                                           name="attack params"))
    raise TypeError(f"cannot read an AttackSpec from {obj!r}")


def _victim_from_obj(obj):
    if obj is None:
        return None
    if isinstance(obj, VictimSpec):
        return obj
    if isinstance(obj, str):
        return parse_victim_spec(obj)
    if isinstance(obj, dict):
        return VictimSpec(obj.get("kind", "svm"),
                          _params_from_obj(obj.get("params"),
                                           name="victim params"))
    raise TypeError(f"cannot read a VictimSpec from {obj!r}")


def defense_to_obj(spec: DefenseSpec | None):
    """JSON form of a defence spec (``None`` passes through)."""
    if spec is None:
        return None
    return {"kind": spec.kind, "percentile": float(spec.percentile),
            "params": _params_to_obj(spec.params)}


def attack_to_obj(spec: AttackSpec | None):
    """JSON form of an attack spec (``None`` passes through)."""
    if spec is None:
        return None
    return {"kind": spec.kind, "percentile": float(spec.percentile),
            "params": _params_to_obj(spec.params)}


def victim_to_obj(spec: VictimSpec | None):
    """JSON form of a victim spec (``None`` passes through)."""
    if spec is None:
        return None
    return {"kind": spec.kind, "params": _params_to_obj(spec.params)}


@dataclass(frozen=True)
class ContextSpec:
    """Declarative experimental-setting identity.

    Names a context the same way :func:`repro.experiments.runner.
    make_context` builds one: a maker name (``"spambase"`` or
    ``"synthetic"``), the base seed, an optional subsample size and any
    extra maker keyword arguments (canonicalised like spec params).
    """

    name: str = "spambase"
    seed: int = 0
    n_samples: int | None = None
    params: tuple = ()

    def __post_init__(self):
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.seed, int):
            object.__setattr__(self, "seed", int(self.seed))
        if self.n_samples is not None:
            object.__setattr__(self, "n_samples",
                               check_positive_int(int(self.n_samples),
                                                  name="n_samples"))
        object.__setattr__(
            self, "params",
            check_canonical_params(self.params, name="context params"))

    def maker_kwargs(self, *, seed: int | None = None) -> dict:
        """The keyword arguments this spec hands to ``make_context``."""
        kwargs = {str(k): v for k, v in self.params}
        kwargs["seed"] = self.seed if seed is None else int(seed)
        if self.n_samples is not None:
            kwargs["n_samples"] = self.n_samples
        return kwargs

    def materialize(self, *, seed: int | None = None):
        """Build the live :class:`ExperimentContext` this spec names.

        ``seed`` overrides the spec's base seed (multi-seed studies
        derive one context per seed from a single spec).
        """
        from repro.experiments.runner import make_context

        return make_context(self.name, **self.maker_kwargs(seed=seed))

    def canonical(self) -> tuple:
        return (self.name, int(self.seed), self.n_samples, self.params)

    def to_obj(self) -> dict:
        return {"name": self.name, "seed": int(self.seed),
                "n_samples": self.n_samples,
                "params": _params_to_obj(self.params)}

    @classmethod
    def from_obj(cls, obj) -> "ContextSpec":
        if isinstance(obj, cls):
            return obj
        if isinstance(obj, str):
            return cls(name=obj)
        return cls(name=obj.get("name", "spambase"),
                   seed=int(obj.get("seed", 0)),
                   n_samples=obj.get("n_samples"),
                   params=_params_from_obj(obj.get("params"),
                                           name="context params"))


@dataclass(frozen=True)
class ScenarioGrid:
    """The scenario axes a study expands into engine rounds.

    One frozen container covers every study kind:

    * ``percentiles`` — the shared strength/placement axis used by the
      sweep-shaped kinds (``figure1``'s grid, the game supports);
    * ``defenses`` / ``attacks`` — explicit spec lists for the kinds
      whose strategies span families (``cross_game``, ``grid``);
      entries may be spec objects, spec strings or ``None`` (the
      undefended / clean baseline);
    * ``victims`` — the victim axis (``None`` = the context's own
      victim factory; single-valued for the paper-shaped kinds);
    * ``fractions`` — contamination rates (single-valued for the
      paper-shaped kinds; a proper axis for ``figure1`` and ``grid``);
    * ``n_repeats`` — seeded repetitions averaged per cell;
    * ``defense_kind``/``defense_params`` — the family swept on the
      percentile axis (default: the paper's radius filter).

    Builders (:mod:`repro.study.builders`) validate which axes a kind
    actually reads.
    """

    percentiles: tuple = ()
    defenses: tuple = ()
    attacks: tuple = ()
    victims: tuple = (None,)
    fractions: tuple = (0.2,)
    n_repeats: int = 1
    defense_kind: str = "radius"
    defense_params: tuple = ()

    def __post_init__(self):
        object.__setattr__(self, "percentiles", tuple(
            check_fraction(float(p), name="grid percentile")
            for p in self.percentiles))
        object.__setattr__(self, "defenses", tuple(
            _defense_from_obj(d) for d in self.defenses))
        object.__setattr__(self, "attacks", tuple(
            _attack_from_obj(a) for a in self.attacks))
        victims = self.victims if isinstance(self.victims, (list, tuple)) \
            else (self.victims,)
        object.__setattr__(self, "victims", tuple(
            _victim_from_obj(v) for v in victims))
        if not self.victims:
            object.__setattr__(self, "victims", (None,))
        fractions = self.fractions if isinstance(self.fractions, (list, tuple)) \
            else (self.fractions,)
        object.__setattr__(self, "fractions", tuple(
            check_fraction(float(f), name="poison fraction",
                           inclusive_high=False)
            for f in fractions))
        if not self.fractions:
            raise ValueError("fractions must be non-empty")
        object.__setattr__(self, "n_repeats",
                           check_positive_int(self.n_repeats, name="n_repeats"))
        if not isinstance(self.defense_kind, str) or not self.defense_kind:
            raise ValueError(
                f"defense_kind must be a non-empty string, got "
                f"{self.defense_kind!r}")
        object.__setattr__(
            self, "defense_params",
            check_canonical_params(self.defense_params,
                                   name="defense params"))

    @property
    def victim(self) -> VictimSpec | None:
        """The single victim of a paper-shaped study."""
        return self.victims[0]

    @property
    def fraction(self) -> float:
        """The single contamination rate of a paper-shaped study."""
        return self.fractions[0]

    def canonical(self) -> tuple:
        return (
            self.percentiles,
            tuple(None if d is None else d.canonical() for d in self.defenses),
            tuple(None if a is None else a.canonical() for a in self.attacks),
            tuple(None if v is None else v.canonical() for v in self.victims),
            self.fractions,
            int(self.n_repeats),
            self.defense_kind,
            self.defense_params,
        )

    def to_obj(self) -> dict:
        return {
            "percentiles": [float(p) for p in self.percentiles],
            "defenses": [defense_to_obj(d) for d in self.defenses],
            "attacks": [attack_to_obj(a) for a in self.attacks],
            "victims": [victim_to_obj(v) for v in self.victims],
            "fractions": [float(f) for f in self.fractions],
            "n_repeats": int(self.n_repeats),
            "defense_kind": self.defense_kind,
            "defense_params": _params_to_obj(self.defense_params),
        }

    @classmethod
    def from_obj(cls, obj) -> "ScenarioGrid":
        if isinstance(obj, cls):
            return obj
        return cls(
            percentiles=tuple(obj.get("percentiles", ())),
            defenses=tuple(obj.get("defenses", ())),
            attacks=tuple(obj.get("attacks", ())),
            victims=tuple(obj.get("victims", (None,)) or (None,)),
            fractions=tuple(obj.get("fractions", (0.2,))),
            n_repeats=int(obj.get("n_repeats", 1)),
            defense_kind=obj.get("defense_kind", "radius"),
            defense_params=_params_from_obj(obj.get("defense_params"),
                                            name="defense params"),
        )


@dataclass(frozen=True)
class EngineConfig:
    """Preferred engine placement for a study (not part of its identity).

    ``run_study`` uses this only when the caller supplies no engine:
    results are bit-identical across backends, so none of these fields
    enter :meth:`StudySpec.fingerprint`.
    """

    backend: str = "serial"
    jobs: int | None = None
    cache: bool = True
    cache_dir: str | None = None
    cache_max_entries: int | None = None

    def build(self):
        """A fresh :class:`~repro.engine.EvaluationEngine` as configured."""
        from repro.engine import EvaluationEngine

        return EvaluationEngine(
            self.backend, jobs=self.jobs, cache=self.cache,
            cache_dir=self.cache_dir,
            cache_max_entries=self.cache_max_entries)

    def to_obj(self) -> dict:
        return {"backend": self.backend, "jobs": self.jobs,
                "cache": bool(self.cache), "cache_dir": self.cache_dir,
                "cache_max_entries": self.cache_max_entries}

    @classmethod
    def from_obj(cls, obj) -> "EngineConfig":
        if isinstance(obj, cls):
            return obj
        return cls(backend=obj.get("backend", "serial"),
                   jobs=obj.get("jobs"),
                   cache=bool(obj.get("cache", True)),
                   cache_dir=obj.get("cache_dir"),
                   cache_max_entries=obj.get("cache_max_entries"))


@dataclass(frozen=True)
class StudySpec:
    """One whole experiment, frozen: ``(kind, context, grid, solver)``.

    ``kind`` names the experiment family (see :data:`STUDY_KINDS`);
    ``context`` may be ``None`` for specs that are only ever run with a
    caller-supplied live context (the deprecation shims do this —
    such specs fingerprint against the live context's content hash);
    ``solver`` holds kind-specific solver configuration as canonical
    params (e.g. ``n_radii`` for ``table1``, ``n_seeds``/``base_seed``
    for ``multi_seed``); ``engine`` is an optional placement
    preference, excluded from the fingerprint.
    """

    kind: str
    context: ContextSpec | None = field(default_factory=ContextSpec)
    grid: ScenarioGrid = field(default_factory=ScenarioGrid)
    solver: tuple = ()
    engine: EngineConfig | None = None

    def __post_init__(self):
        if self.kind not in STUDY_KINDS:
            raise ValueError(
                f"unknown study kind {self.kind!r}; known kinds: "
                f"{sorted(STUDY_KINDS)}")
        if self.context is not None and not isinstance(self.context,
                                                       ContextSpec):
            object.__setattr__(self, "context",
                               ContextSpec.from_obj(self.context))
        if not isinstance(self.grid, ScenarioGrid):
            object.__setattr__(self, "grid", ScenarioGrid.from_obj(self.grid))
        object.__setattr__(
            self, "solver",
            check_canonical_params(self.solver, name="solver params"))
        if self.engine is not None and not isinstance(self.engine,
                                                      EngineConfig):
            object.__setattr__(self, "engine",
                               EngineConfig.from_obj(self.engine))

    def solver_param(self, key: str, default=None):
        """The solver parameter ``key``, or ``default``."""
        for k, v in self.solver:
            if k == key:
                return v
        return default

    def fingerprint(self, *, context_fingerprint: str | None = None) -> str:
        """Content hash addressing this study's results.

        Covers the schema version, kind, context identity, grid and
        solver config; excludes engine placement.  Specs with
        ``context=None`` describe an experiment on a caller-supplied
        context and must be given that context's fingerprint.
        """
        if self.context is not None:
            context = self.context.canonical()
        elif context_fingerprint is not None:
            context = ("inline", str(context_fingerprint))
        else:
            raise ValueError(
                "this StudySpec has no ContextSpec; pass "
                "context_fingerprint= (the live context's content hash)")
        payload = json.dumps(
            [STUDY_SCHEMA_VERSION, self.kind, context,
             self.grid.canonical(), self.solver],
            separators=(",", ":"), sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def to_obj(self) -> dict:
        return {
            "type": "StudySpec",
            "schema": STUDY_SCHEMA_VERSION,
            "kind": self.kind,
            "context": None if self.context is None else self.context.to_obj(),
            "grid": self.grid.to_obj(),
            "solver": _params_to_obj(self.solver),
            "engine": None if self.engine is None else self.engine.to_obj(),
        }

    @classmethod
    def from_obj(cls, obj: dict) -> "StudySpec":
        if isinstance(obj, cls):
            return obj
        if obj.get("type", "StudySpec") != "StudySpec":
            raise ValueError(f"not a StudySpec document: type={obj.get('type')!r}")
        schema = int(obj.get("schema", STUDY_SCHEMA_VERSION))
        if schema > STUDY_SCHEMA_VERSION:
            raise ValueError(
                f"study document schema v{schema} is newer than this "
                f"build's v{STUDY_SCHEMA_VERSION}")
        context = obj.get("context")
        return cls(
            kind=obj.get("kind", ""),
            context=None if context is None else ContextSpec.from_obj(context),
            grid=ScenarioGrid.from_obj(obj.get("grid", {})),
            solver=_params_from_obj(obj.get("solver"), name="solver params"),
            engine=(None if obj.get("engine") is None
                    else EngineConfig.from_obj(obj["engine"])),
        )


def study_to_json(spec: StudySpec, path: str | None = None) -> str:
    """Serialise a :class:`StudySpec` to its canonical JSON document."""
    text = json.dumps(spec.to_obj(), indent=2, sort_keys=True)
    if path is not None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)
    return text


def study_from_json(text_or_path: str) -> StudySpec:
    """Inverse of :func:`study_to_json` (accepts a path or raw JSON)."""
    from repro.utils.serialization import read_json_document

    return StudySpec.from_obj(read_json_document(text_or_path))
