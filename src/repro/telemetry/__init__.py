"""repro.telemetry — unified metrics, tracing and profiling.

One observability layer for every tier: the engine's stage timings,
both cache tiers' hit counters, the cluster scheduler's placement and
requeue behaviour, shard-side chunk spans, and retry attempts all flow
through this module.  It is **disabled by default** and the disabled
path is a no-op — shared singleton instruments, no allocation, no
I/O — so the hot-path benchmark floors are unaffected.

Enabling
--------
``REPRO_TELEMETRY_DIR=<dir>`` (or ``--telemetry-dir``) arms metrics
*and* the JSONL trace sink: every process — client, pool workers,
autospawned shards (they inherit the environment) — writes spans to
its own ``trace-<pid>-*.jsonl`` under the directory.  ``repro trace
<dir>`` renders the merged tree.  ``REPRO_TELEMETRY=1`` arms metrics
alone (counters, histograms, study provenance summaries) with no disk
I/O.

Aggregation
-----------
Metrics are process-local; cross-process totals use the delta
discipline (:meth:`~repro.telemetry.metrics.MetricsRegistry.flush_delta`
/ ``merge``): pool workers return a delta beside their outcomes,
cluster shards piggyback one on ``chunk_result`` messages, and the
client folds them into its own registry — so ``summary()`` on the
client covers the whole fleet regardless of backend.  ``summary()``
also derives per-stage time breakdowns from the ``span.<name>.seconds``
histograms every span feeds.

Typical instrumented call sites::

    from repro import telemetry

    telemetry.counter("cache.disk.hits").inc()
    with telemetry.trace_span("fit", rounds=len(group)):
        model.fit_many(...)
"""

from __future__ import annotations

import os
import threading

from repro.telemetry.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                                     NOOP_COUNTER, NOOP_GAUGE,
                                     NOOP_HISTOGRAM, diff_snapshots)
from repro.telemetry.tracing import NOOP_SPAN, Tracer

__all__ = [
    "SUMMARY_SCHEMA_VERSION",
    "configure",
    "counter",
    "diff_snapshots",
    "enabled",
    "flush_delta",
    "gauge",
    "histogram",
    "merge",
    "registry",
    "reset",
    "snapshot",
    "summary",
    "trace_dir",
    "trace_span",
]

SUMMARY_SCHEMA_VERSION = 1

_TRUTHY = {"1", "true", "on", "yes"}


class _State:
    __slots__ = ("enabled", "directory", "registry", "tracer", "sink")

    def __init__(self, enabled: bool, directory: str | None):
        self.enabled = enabled
        self.directory = directory
        self.registry = MetricsRegistry()
        self.sink = None
        if enabled and directory:
            from repro.telemetry.sink import JsonlSink

            self.sink = JsonlSink(directory)
            self.sink.register_atexit(self.registry.snapshot)
        self.tracer = Tracer(self.registry, self.sink) if enabled \
            else None


_state: _State | None = None
_state_lock = threading.Lock()


def _ensure() -> _State:
    global _state
    state = _state
    if state is None:
        with _state_lock:
            state = _state
            if state is None:
                directory = os.environ.get("REPRO_TELEMETRY_DIR") or None
                armed = bool(directory) or (
                    os.environ.get("REPRO_TELEMETRY", "").strip().lower()
                    in _TRUTHY)
                state = _state = _State(armed, directory)
    return state


def configure(directory: str | None = None, *,
              metrics_only: bool = False) -> None:
    """Explicitly (re)arm telemetry, replacing any current state.

    ``directory`` arms metrics plus the JSONL sink; ``metrics_only``
    arms metrics without disk I/O.  Also exports
    ``REPRO_TELEMETRY_DIR`` so spawned workers and shards inherit the
    setting.
    """
    global _state
    with _state_lock:
        if directory:
            os.environ["REPRO_TELEMETRY_DIR"] = directory
            _state = _State(True, directory)
        elif metrics_only:
            os.environ.pop("REPRO_TELEMETRY_DIR", None)
            os.environ["REPRO_TELEMETRY"] = "1"
            _state = _State(True, None)
        else:
            os.environ.pop("REPRO_TELEMETRY_DIR", None)
            os.environ.pop("REPRO_TELEMETRY", None)
            _state = _State(False, None)


def reset() -> None:
    """Drop all state; the next call re-reads the environment.

    An open sink is closed with the same final ``metrics`` event the
    atexit hook would write, so a trace directory is self-contained
    even when telemetry is torn down mid-process (tests, embedders).
    """
    global _state
    with _state_lock:
        state, _state = _state, None
    if state is not None and state.sink is not None:
        import time

        state.sink.close({"event": "metrics", "pid": os.getpid(),
                          "ts": time.time(),
                          "metrics": state.registry.snapshot()})


def enabled() -> bool:
    """Whether telemetry (metrics at least) is armed."""
    return _ensure().enabled


def trace_dir() -> str | None:
    """The armed JSONL directory, or ``None``."""
    return _ensure().directory


def registry() -> MetricsRegistry:
    """The live process registry (a real one even when disabled, so
    tests can inspect; instruments reached through it always record)."""
    return _ensure().registry


def counter(name: str):
    """The named counter, or the shared no-op when disabled."""
    state = _ensure()
    return state.registry.counter(name) if state.enabled \
        else NOOP_COUNTER


def gauge(name: str):
    """The named gauge, or the shared no-op when disabled."""
    state = _ensure()
    return state.registry.gauge(name) if state.enabled else NOOP_GAUGE


def histogram(name: str, buckets: tuple = DEFAULT_BUCKETS):
    """The named histogram, or the shared no-op when disabled."""
    state = _ensure()
    return state.registry.histogram(name, buckets) if state.enabled \
        else NOOP_HISTOGRAM


def trace_span(name: str, **attrs):
    """Context manager timing a named span (no-op when disabled)."""
    state = _ensure()
    if state.tracer is None:
        return NOOP_SPAN
    return state.tracer.span(name, attrs)


def snapshot() -> dict:
    """The registry's full snapshot (empty shapes when disabled)."""
    return _ensure().registry.snapshot()


def flush_delta() -> dict | None:
    """Ship-and-reset delta for cross-process piggybacking.

    ``None`` when disabled or when nothing changed — callers omit the
    field from replies entirely in both cases.
    """
    state = _ensure()
    if not state.enabled:
        return None
    return state.registry.flush_delta()


def merge(delta: dict | None) -> None:
    """Fold a worker/shard delta into the local registry."""
    if delta:
        _ensure().registry.merge(delta)


def summary(since: dict | None = None) -> dict:
    """A JSON-safe roll-up for study provenance and reports.

    ``since`` (an earlier :func:`snapshot`) scopes the roll-up to the
    activity in between.  The ``stages`` section aggregates every
    ``span.<name>.seconds`` histogram to ``{count, seconds}`` — the
    per-stage time breakdown ``repro report --telemetry`` renders.
    """
    snap = snapshot()
    if since is not None:
        snap = diff_snapshots(since, snap)
    stages = {}
    for name, data in snap.get("histograms", {}).items():
        if name.startswith("span.") and name.endswith(".seconds"):
            stage = name[len("span."):-len(".seconds")]
            stages[stage] = {"count": data.get("count", 0),
                             "seconds": round(data.get("sum", 0.0), 6)}
    return {
        "schema": SUMMARY_SCHEMA_VERSION,
        "counters": snap.get("counters", {}),
        "gauges": snap.get("gauges", {}),
        "stages": stages,
    }
