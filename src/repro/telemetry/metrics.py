"""Process-local metrics: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` lives per process (module singleton owned
by :mod:`repro.telemetry`).  All instruments are thread-safe behind one
registry lock and deliberately tiny: a counter is an integer, a
histogram is a tuple of bucket boundaries plus per-bucket counts, a
sum and a count.  Everything exports to plain dicts (``snapshot``) so
metrics travel over the cluster protocol and land in study provenance
without any custom serialisation.

Cross-process aggregation uses a delta discipline rather than shared
memory: a worker or shard calls :meth:`MetricsRegistry.flush_delta`
(everything accumulated since the previous flush) and ships the dict
back piggybacked on its normal reply; the client calls
:meth:`MetricsRegistry.merge` to fold it in.  Counters and histograms
add; gauges are last-writer-wins and never travel in deltas.

When telemetry is disabled the module-level no-op instruments
(:data:`NOOP_COUNTER` et al.) stand in for the real ones: shared
singletons whose methods do nothing, so the disabled hot path costs a
method call and allocates nothing.
"""

from __future__ import annotations

import threading

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_COUNTER",
    "NOOP_GAUGE",
    "NOOP_HISTOGRAM",
    "diff_snapshots",
]

# Seconds-scale latency boundaries: wide enough for a 10 us cache probe
# and a multi-minute cluster chunk in the same instrument.  An implicit
# +Inf bucket always terminates the list.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        with self._lock:
            self.value += n


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        with self._lock:
            self.value = float(value)


class Histogram:
    """Fixed-boundary histogram of float observations (seconds).

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    is the implicit +Inf bucket.  ``sum``/``count`` give the mean.
    """

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.RLock,
                 buckets: tuple = DEFAULT_BUCKETS):
        self._lock = lock
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1


class _NoopCounter:
    __slots__ = ()
    value = 0

    def inc(self, n: int = 1) -> None:
        pass


class _NoopGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass


class _NoopHistogram:
    __slots__ = ()
    buckets = ()
    counts = ()
    sum = 0.0
    count = 0

    def observe(self, value: float) -> None:
        pass


NOOP_COUNTER = _NoopCounter()
NOOP_GAUGE = _NoopGauge()
NOOP_HISTOGRAM = _NoopHistogram()


class MetricsRegistry:
    """Thread-safe name → instrument map with snapshot/delta export."""

    def __init__(self):
        self._lock = threading.RLock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Watermarks for flush_delta: what has already been shipped.
        self._flushed_counters: dict[str, int] = {}
        self._flushed_histograms: dict[str, tuple] = {}

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created on first use)."""
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(self._lock)
            return inst

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created on first use)."""
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(self._lock)
            return inst

    def histogram(self, name: str,
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        """The histogram under ``name`` (created with ``buckets``)."""
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(self._lock,
                                                          buckets)
            return inst

    def snapshot(self) -> dict:
        """Everything, as a plain JSON-safe dict."""
        with self._lock:
            return {
                "counters": {n: c.value
                             for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value
                           for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: {"buckets": list(h.buckets),
                        "counts": list(h.counts),
                        "sum": h.sum, "count": h.count}
                    for n, h in sorted(self._histograms.items())
                },
            }

    def flush_delta(self) -> dict | None:
        """Counters/histograms accumulated since the previous flush.

        Returns ``None`` when nothing changed, so callers can omit the
        field from wire messages entirely.  Gauges never travel: they
        are point-in-time process-local readings, not accumulations.
        """
        with self._lock:
            counters = {}
            for name, c in self._counters.items():
                delta = c.value - self._flushed_counters.get(name, 0)
                if delta:
                    counters[name] = delta
                    self._flushed_counters[name] = c.value
            histograms = {}
            for name, h in self._histograms.items():
                prev = self._flushed_histograms.get(name)
                if prev is None:
                    prev = ([0] * len(h.counts), 0.0, 0)
                d_counts = [a - b for a, b in zip(h.counts, prev[0])]
                d_count = h.count - prev[2]
                if d_count:
                    histograms[name] = {
                        "buckets": list(h.buckets),
                        "counts": d_counts,
                        "sum": h.sum - prev[1],
                        "count": d_count,
                    }
                    self._flushed_histograms[name] = (
                        list(h.counts), h.sum, h.count)
        if not counters and not histograms:
            return None
        delta: dict = {}
        if counters:
            delta["counters"] = counters
        if histograms:
            delta["histograms"] = histograms
        return delta

    def merge(self, delta: dict | None) -> None:
        """Fold a remote :meth:`flush_delta` dict into this registry."""
        if not delta:
            return
        with self._lock:
            for name, value in delta.get("counters", {}).items():
                self.counter(name).value += int(value)
            for name, data in delta.get("histograms", {}).items():
                h = self.histogram(name,
                                   tuple(data.get("buckets",
                                                  DEFAULT_BUCKETS)))
                counts = data.get("counts", [])
                if len(counts) == len(h.counts):
                    for i, n in enumerate(counts):
                        h.counts[i] += int(n)
                else:  # boundary mismatch: keep sum/count, drop shape
                    h.counts[-1] += int(data.get("count", 0))
                h.sum += float(data.get("sum", 0.0))
                h.count += int(data.get("count", 0))


def diff_snapshots(before: dict, after: dict) -> dict:
    """``after - before`` for two :meth:`MetricsRegistry.snapshot` dicts.

    Used to scope a study's provenance summary to the study itself when
    the process registry already holds earlier activity.  Gauges keep
    their ``after`` reading.
    """
    counters = {}
    for name, value in after.get("counters", {}).items():
        delta = value - before.get("counters", {}).get(name, 0)
        if delta:
            counters[name] = delta
    histograms = {}
    for name, data in after.get("histograms", {}).items():
        prev = before.get("histograms", {}).get(name)
        if prev is None:
            if data.get("count"):
                histograms[name] = data
            continue
        d_count = data.get("count", 0) - prev.get("count", 0)
        if not d_count:
            continue
        histograms[name] = {
            "buckets": data.get("buckets", []),
            "counts": [a - b for a, b in zip(data.get("counts", []),
                                             prev.get("counts", []))],
            "sum": data.get("sum", 0.0) - prev.get("sum", 0.0),
            "count": d_count,
        }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }
