"""Crash-safe JSONL event sink: one file per process.

Every telemetry-enabled process appends JSON events (one object per
line) to its own ``trace-<pid>-<token>.jsonl`` under the telemetry
directory.  Writes are line-buffered and flushed per event, so a
``SIGKILL`` at any instant loses at most the final partial line — the
trace viewer (:mod:`repro.telemetry.viewer`) skips unparseable tails
by design.  Per-process files mean no cross-process locking and no
interleaved lines; shard servers, pool workers and the client all just
inherit ``REPRO_TELEMETRY_DIR`` and write beside each other.

At interpreter exit the sink appends one final ``metrics`` event with
the registry snapshot, so a trace directory is self-contained: spans
plus each process's closing counters.
"""

from __future__ import annotations

import atexit
import json
import os
import threading
import time

__all__ = ["JsonlSink"]


class JsonlSink:
    """Append-only JSONL writer with per-line flushes."""

    def __init__(self, directory: str):
        self.directory = directory
        self.path = os.path.join(
            directory,
            f"trace-{os.getpid()}-{time.time_ns() & 0xFFFFFF:06x}.jsonl")
        self._lock = threading.Lock()
        self._fh = None
        self._closed = False

    def _ensure_open(self):
        if self._fh is None and not self._closed:
            os.makedirs(self.directory, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8", buffering=1)
        return self._fh

    def write(self, event: dict) -> None:
        """Append one event; a flush per line bounds crash loss."""
        try:
            line = json.dumps(event, separators=(",", ":"))
        except (TypeError, ValueError):
            return  # never let a bad attr kill the instrumented path
        with self._lock:
            fh = self._ensure_open()
            if fh is None:
                return
            try:
                fh.write(line + "\n")
                fh.flush()
            except OSError:
                self._closed = True  # disk gone: stop trying, keep running

    def close(self, final_event: dict | None = None) -> None:
        """Optionally append a final event, then close the file."""
        if final_event is not None:
            self.write(final_event)
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None
            self._closed = True

    def register_atexit(self, snapshot_fn) -> None:
        """Arrange the closing ``metrics`` event at interpreter exit."""

        def _finalise():
            try:
                self.close({"event": "metrics", "pid": os.getpid(),
                            "ts": time.time(), "metrics": snapshot_fn()})
            except Exception:
                pass

        atexit.register(_finalise)
