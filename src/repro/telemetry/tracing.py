"""Span-based tracing with thread-local parent/child nesting.

``trace_span("fit", round_key=...)`` is a context manager.  On exit it
emits one JSONL event carrying the span's name, ids, wall-clock start,
duration and attributes — end-emission means children appear before
their parents in the file, and the viewer rebuilds the tree from the
``parent`` field.  Every span also feeds a ``span.<name>.seconds``
histogram, so per-stage time breakdowns are available from metrics
alone (and therefore from study provenance and shard deltas) even when
no sink directory is configured.

Span ids are small per-process integers; ``(pid, span)`` is globally
unique within a trace directory because each process writes its own
file.  The parent stack is thread-local: spans nest per thread, and
cross-thread work (scheduler shard workers, server connection threads)
starts fresh roots, which is the truthful shape.

When tracing is disabled, :data:`NOOP_SPAN` — one shared reusable
context manager — is returned instead, so a disabled call site costs a
function call and no allocation beyond its kwargs.
"""

from __future__ import annotations

import itertools
import os
import threading
import time

__all__ = ["Tracer", "NOOP_SPAN"]


class _NoopSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "span_id", "parent_id",
                 "_t0", "_ts")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self):
        stack = self._tracer._stack()
        self.parent_id = stack[-1] if stack else None
        self.span_id = next(self._tracer._ids)
        stack.append(self.span_id)
        self._ts = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        duration = time.perf_counter() - self._t0
        stack = self._tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        self._tracer._finish(self, duration, exc_type)
        return False


class Tracer:
    """Produces spans bound to a registry and an optional sink."""

    def __init__(self, registry, sink=None):
        self.registry = registry
        self.sink = sink
        self._ids = itertools.count(1)
        self._local = threading.local()

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, attrs: dict) -> _Span:
        return _Span(self, name, attrs)

    def _finish(self, span: _Span, duration: float, exc_type) -> None:
        self.registry.histogram(f"span.{span.name}.seconds") \
            .observe(duration)
        if self.sink is not None:
            event = {
                "event": "span",
                "name": span.name,
                "pid": os.getpid(),
                "span": span.span_id,
                "parent": span.parent_id,
                "ts": span._ts,
                "dur": duration,
            }
            if span.attrs:
                event["attrs"] = span.attrs
            if exc_type is not None:
                event["error"] = exc_type.__name__
            self.sink.write(event)
