"""Trace-directory reader and tree renderer for ``repro trace``.

A telemetry directory holds one JSONL file per process (client, pool
workers, shard servers).  :func:`load_trace_dir` parses them all
tolerantly — unparseable lines (the partial tail a ``SIGKILL`` leaves
behind) are counted and skipped, never fatal.  :func:`render_trace`
rebuilds each process's span forest from the ``parent`` links, orders
siblings by wall-clock start, and prints an indented tree with
durations and attributes, plus each process's closing metrics counters
when present.
"""

from __future__ import annotations

import glob
import json
import os

__all__ = ["load_trace_dir", "render_trace", "format_span_tree"]


def load_trace_dir(directory: str) -> dict:
    """Parse every ``*.jsonl`` file under ``directory``.

    Returns ``{"spans": [...], "metrics": [...], "files": n,
    "skipped_lines": n}``; raises ``FileNotFoundError`` only when the
    directory itself is absent.
    """
    if not os.path.isdir(directory):
        raise FileNotFoundError(f"no such telemetry directory: "
                                f"{directory}")
    spans, metrics = [], []
    files = sorted(glob.glob(os.path.join(directory, "*.jsonl")))
    skipped = 0
    for path in files:
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                for line in fh:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                    except ValueError:
                        skipped += 1  # crash-truncated tail
                        continue
                    kind = event.get("event")
                    if kind == "span":
                        spans.append(event)
                    elif kind == "metrics":
                        metrics.append(event)
        except OSError:
            continue
    return {"spans": spans, "metrics": metrics,
            "files": len(files), "skipped_lines": skipped}


def _attr_suffix(event: dict) -> str:
    attrs = event.get("attrs") or {}
    parts = [f"{k}={v}" for k, v in sorted(attrs.items())]
    if event.get("error"):
        parts.append(f"error={event['error']}")
    return ("  [" + " ".join(parts) + "]") if parts else ""


def format_span_tree(spans: list) -> list[str]:
    """Indented lines for one process's spans (parent-linked forest)."""
    by_id = {s.get("span"): s for s in spans}
    children: dict = {}
    roots = []
    for s in spans:
        parent = s.get("parent")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(s)
        else:
            roots.append(s)
    lines: list[str] = []

    def emit(span, depth):
        dur = span.get("dur", 0.0)
        lines.append(f"{'  ' * depth}{span.get('name', '?')} "
                     f"({dur * 1000.0:.1f} ms){_attr_suffix(span)}")
        for child in sorted(children.get(span.get("span"), []),
                            key=lambda s: s.get("ts", 0.0)):
            emit(child, depth + 1)

    for root in sorted(roots, key=lambda s: s.get("ts", 0.0)):
        emit(root, 1)
    return lines


def render_trace(directory: str, *, metrics: bool = True) -> str:
    """The merged, ordered tree view of a telemetry directory."""
    trace = load_trace_dir(directory)
    if not trace["spans"] and not trace["metrics"]:
        return (f"{directory}: no telemetry events in "
                f"{trace['files']} file(s)")
    by_pid: dict = {}
    for span in trace["spans"]:
        by_pid.setdefault(span.get("pid", 0), []).append(span)
    lines = []
    first_ts = {pid: min(s.get("ts", 0.0) for s in spans)
                for pid, spans in by_pid.items()}
    for pid in sorted(by_pid, key=lambda p: first_ts[p]):
        spans = by_pid[pid]
        lines.append(f"process {pid} — {len(spans)} span(s)")
        lines.extend(format_span_tree(spans))
        lines.append("")
    if metrics:
        for event in sorted(trace["metrics"],
                            key=lambda e: e.get("ts", 0.0)):
            counters = event.get("metrics", {}).get("counters", {})
            if not counters:
                continue
            lines.append(f"process {event.get('pid', '?')} counters:")
            for name, value in sorted(counters.items()):
                lines.append(f"  {name} = {value}")
            lines.append("")
    if trace["skipped_lines"]:
        lines.append(f"({trace['skipped_lines']} unparseable line(s) "
                     f"skipped — crash-truncated tails)")
    return "\n".join(lines).rstrip()
