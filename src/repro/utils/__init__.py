"""Shared utilities: deterministic RNG handling, validation, logging.

These helpers are deliberately small and dependency-free so that every
other subpackage can rely on them without import cycles.
"""

from repro.utils.rng import as_generator, spawn_generators, derive_seed
from repro.utils.validation import (
    check_array,
    check_X_y,
    check_fraction,
    check_positive_int,
    check_probability_vector,
    check_sorted_increasing,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "check_array",
    "check_X_y",
    "check_fraction",
    "check_positive_int",
    "check_probability_vector",
    "check_sorted_increasing",
]
