"""Minimal structured logging for experiment harnesses.

The library itself never prints; experiment runners opt into a logger.
We use the stdlib ``logging`` module with one library-level logger so
applications can configure handlers the usual way.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_console_logging"]

_LIBRARY_LOGGER_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger, or a child logger named ``name``."""
    if name is None:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def configure_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple console handler to the library logger.

    Idempotent: calling it twice does not duplicate handlers.
    """
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger
