"""Minimal structured logging for experiment harnesses.

The library itself never prints; experiment runners opt into a logger.
We use the stdlib ``logging`` module with one library-level logger so
applications can configure handlers the usual way.
"""

from __future__ import annotations

import json
import logging
import time

__all__ = ["get_logger", "configure_console_logging",
           "configure_json_logging"]

_LIBRARY_LOGGER_NAME = "repro"

# logging.LogRecord attributes that are plumbing, not payload — anything
# else on a record (``logger.info(..., extra={...})``) is an extra field
# the JSON formatter should emit.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__) | {
        "message", "asctime", "taskName"}


def get_logger(name: str | None = None) -> logging.Logger:
    """Return the library logger, or a child logger named ``name``."""
    if name is None:
        return logging.getLogger(_LIBRARY_LOGGER_NAME)
    return logging.getLogger(f"{_LIBRARY_LOGGER_NAME}.{name}")


def configure_console_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a simple console handler to the library logger.

    Idempotent: calling it twice does not duplicate handlers.
    """
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
    return logger


class _JsonFormatter(logging.Formatter):
    """One JSON object per line: timestamp, level, logger, message,
    plus any ``extra={...}`` fields passed at the call site."""

    def format(self, record: logging.LogRecord) -> str:
        doc = {
            "ts": time.strftime("%Y-%m-%dT%H:%M:%S",
                                time.gmtime(record.created))
                  + f".{int(record.msecs):03d}Z",
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS:
                try:
                    json.dumps(value)
                except (TypeError, ValueError):
                    value = repr(value)
                doc[key] = value
        if record.exc_info:
            doc["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(doc, separators=(",", ":"))


def configure_json_logging(level: int = logging.INFO) -> logging.Logger:
    """Attach a machine-parseable JSON-lines handler to the library
    logger (for the service tier; pipe into ``jq`` or a log shipper).

    Idempotent, and independent of :func:`configure_console_logging`:
    each attaches its own handler kind at most once, and arming JSON
    logging never alters an existing console handler.
    """
    logger = get_logger()
    logger.setLevel(level)
    if not any(isinstance(h.formatter, _JsonFormatter)
               for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(_JsonFormatter())
        logger.addHandler(handler)
    return logger
