"""Deterministic random-number-generator plumbing.

Every stochastic component in this library accepts either an integer
seed, ``None`` (fresh entropy), or an existing
:class:`numpy.random.Generator`.  :func:`as_generator` normalises all
three into a ``Generator`` so downstream code never touches the legacy
``numpy.random`` global state.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_generator", "spawn_generators", "derive_seed"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` for a deterministic stream,
        or an existing ``Generator`` which is returned unchanged (so a
        caller can thread one generator through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(
        f"seed must be None, an int, or a numpy Generator; got {type(seed).__name__}"
    )


def spawn_generators(seed: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Children are derived through :meth:`numpy.random.Generator.spawn`
    so that parallel experiment arms never share a stream.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return as_generator(seed).spawn(n)


def derive_seed(base_seed: int, *labels: object) -> int:
    """Deterministically derive a 63-bit seed from a base seed and labels.

    Used by the experiment runner to give every (experiment, repetition,
    arm) combination a reproducible but distinct seed:

    >>> derive_seed(7, "figure1", 0) == derive_seed(7, "figure1", 0)
    True
    >>> derive_seed(7, "figure1", 0) != derive_seed(7, "figure1", 1)
    True
    """
    digest = hashlib.sha256(
        ("|".join([str(base_seed), *map(str, labels)])).encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1
