"""Shared JSON document loading for the archival formats.

Result records, study specs and study results all accept "raw JSON text
or a file path" in their loaders; this is the one implementation of
that sniffing so the three loaders cannot drift.  The writing side is
:func:`atomic_write_text`: archives and checkpoints are exactly the
files a crashed process must never leave half-written.
"""

from __future__ import annotations

import json
import os
import tempfile

__all__ = ["atomic_write_text", "read_json_document"]


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp + fsync + rename).

    A reader never observes a partial file: either the old content (or
    absence) or the complete new content.  The temp file lives in the
    target's directory so the final ``os.replace`` stays on one
    filesystem; it is fsynced before the rename so a crash cannot
    promote an empty inode over good data.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory,
                               prefix=os.path.basename(path) + ".",
                               suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json_document(text_or_path: str):
    """Parse ``text_or_path`` as JSON text, or as a path to a JSON file.

    Anything whose first non-whitespace character is ``{`` is treated
    as inline JSON; everything else is opened as a file.
    """
    if text_or_path.lstrip().startswith("{"):
        return json.loads(text_or_path)
    with open(text_or_path, encoding="utf-8") as fh:
        return json.load(fh)
