"""Shared JSON document loading for the archival formats.

Result records, study specs and study results all accept "raw JSON text
or a file path" in their loaders; this is the one implementation of
that sniffing so the three loaders cannot drift.
"""

from __future__ import annotations

import json

__all__ = ["read_json_document"]


def read_json_document(text_or_path: str):
    """Parse ``text_or_path`` as JSON text, or as a path to a JSON file.

    Anything whose first non-whitespace character is ``{`` is treated
    as inline JSON; everything else is opened as a file.
    """
    if text_or_path.lstrip().startswith("{"):
        return json.loads(text_or_path)
    with open(text_or_path, encoding="utf-8") as fh:
        return json.load(fh)
