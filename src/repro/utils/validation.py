"""Input validation helpers shared across the library.

The conventions mirror the strictness of a production numerical library:
fail fast with a precise message rather than propagate NaNs or silently
broadcast mis-shaped arrays.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "check_array",
    "check_X_y",
    "check_fraction",
    "check_positive_int",
    "check_probability_vector",
    "check_sorted_increasing",
    "check_canonical_params",
]


def check_canonical_params(params, *, name: str = "params") -> tuple:
    """Canonicalise a parameter mapping to a sorted, hashable tuple.

    Accepts a dict or an iterable of ``(key, value)`` pairs and returns
    ``tuple(sorted((str(k), v), ...))`` — the stable form the engine's
    spec dataclasses and victim factories embed in cache keys and
    fingerprints.  Raises ``ValueError`` for unhashable values, which
    could never produce a stable key.
    """
    if isinstance(params, dict):
        pairs = params.items()
    else:
        pairs = tuple(params)
    try:
        pairs = tuple(sorted((str(k), v) for k, v in pairs))
        hash(pairs)
    except (TypeError, ValueError) as exc:
        raise ValueError(
            f"{name} must be a mapping (or (key, value) pairs) with "
            f"hashable values, got {params!r}"
        ) from exc
    return pairs


def check_array(X, *, ndim: int = 2, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a float ndarray of dimensionality ``ndim``.

    Raises ``ValueError`` on wrong dimensionality, emptiness, or
    non-finite entries.
    """
    arr = np.asarray(X, dtype=float)
    if arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_X_y(X, y) -> tuple[np.ndarray, np.ndarray]:
    """Validate a feature matrix / label vector pair.

    Labels are returned as an int array; they must be drawn from
    ``{-1, +1}`` or ``{0, 1}`` (binary classification is the only task
    in this library, matching the paper).
    """
    X = check_array(X, ndim=2, name="X")
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"y must be 1-dimensional, got shape {y.shape}")
    if y.shape[0] != X.shape[0]:
        raise ValueError(
            f"X and y have inconsistent lengths: {X.shape[0]} != {y.shape[0]}"
        )
    labels = set(np.unique(y).tolist())
    if not (labels <= {-1, 1} or labels <= {0, 1}):
        raise ValueError(f"y must be binary with labels in {{-1,+1}} or {{0,1}}, got {labels}")
    return X, y.astype(int)


def check_fraction(value: float, *, name: str = "fraction", inclusive_low: bool = True,
                   inclusive_high: bool = True) -> float:
    """Validate a scalar in [0, 1] (bounds optionally exclusive)."""
    value = float(value)
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok and np.isfinite(value)):
        lo = "[" if inclusive_low else "("
        hi = "]" if inclusive_high else ")"
        raise ValueError(f"{name} must lie in {lo}0, 1{hi}, got {value}")
    return value


def check_positive_int(value: int, *, name: str = "value") -> int:
    """Validate a strictly positive integer."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability_vector(p, *, name: str = "probabilities", atol: float = 1e-8) -> np.ndarray:
    """Validate a non-negative vector summing to one."""
    p = np.asarray(p, dtype=float)
    if p.ndim != 1 or p.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-d vector, got shape {p.shape}")
    if np.any(p < -atol):
        raise ValueError(f"{name} has negative entries: {p}")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=max(atol, 1e-6)):
        raise ValueError(f"{name} must sum to 1, got {total}")
    p = np.clip(p, 0.0, None)
    return p / p.sum()


def check_sorted_increasing(values, *, name: str = "values", strict: bool = True) -> np.ndarray:
    """Validate a 1-d array sorted in (strictly) increasing order."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError(f"{name} must be a non-empty 1-d array")
    diffs = np.diff(arr)
    if strict and np.any(diffs <= 0):
        raise ValueError(f"{name} must be strictly increasing, got {arr}")
    if not strict and np.any(diffs < 0):
        raise ValueError(f"{name} must be non-decreasing, got {arr}")
    return arr
