"""Tests for the poisoning attacks."""

import numpy as np
import pytest

from repro.attacks.base import attack_budget, poison_dataset
from repro.attacks.bilevel import BilevelGradientAttack
from repro.attacks.furthest_point import FurthestPointAttack
from repro.attacks.label_flip import LabelFlipAttack
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.attacks.random_noise import RandomNoiseAttack
from repro.data.geometry import compute_centroid, distances_to_centroid, \
    radius_for_percentile
from repro.ml.base import signed_labels
from repro.ml.ridge import RidgeClassifier

ALL_ATTACKS = [
    OptimalBoundaryAttack(0.1),
    LabelFlipAttack("random"),
    LabelFlipAttack("far_from_own_class"),
    LabelFlipAttack("near_boundary"),
    RandomNoiseAttack(0.1),
    RandomNoiseAttack(0.1, fill=True),
    FurthestPointAttack(0.2),
    BilevelGradientAttack(0.1, n_outer=3),
]


class TestAttackBudget:
    def test_twenty_percent(self):
        # poison = 20 % of the FINAL training set
        n = attack_budget(800, 0.2)
        assert n == 200
        assert n / (800 + n) == pytest.approx(0.2)

    def test_zero_fraction(self):
        assert attack_budget(100, 0.0) == 0

    def test_full_fraction_rejected(self):
        with pytest.raises(ValueError):
            attack_budget(100, 1.0)


@pytest.mark.parametrize("attack", ALL_ATTACKS, ids=lambda a: type(a).__name__ + getattr(a, "strategy", ""))
class TestAttackContract:
    def test_shapes_and_labels(self, blobs, attack):
        X, y = blobs
        X_p, y_p = attack.generate(X, y, 15, seed=0)
        assert X_p.shape == (15, X.shape[1])
        assert set(np.unique(np.asarray(y_p))) <= {-1, 1}

    def test_deterministic_given_seed(self, blobs, attack):
        X, y = blobs
        X1, y1 = attack.generate(X, y, 10, seed=3)
        X2, y2 = attack.generate(X, y, 10, seed=3)
        np.testing.assert_array_equal(X1, X2)
        np.testing.assert_array_equal(np.asarray(y1), np.asarray(y2))

    def test_does_not_mutate_input(self, blobs, attack):
        X, y = blobs
        X_copy, y_copy = X.copy(), y.copy()
        attack.generate(X, y, 10, seed=0)
        np.testing.assert_array_equal(X, X_copy)
        np.testing.assert_array_equal(y, y_copy)


class TestOptimalBoundary:
    def test_points_at_target_radius(self, blobs):
        X, y = blobs
        attack = OptimalBoundaryAttack(0.1)
        X_p, _ = attack.generate(X, y, 20, seed=0)
        centroid = compute_centroid(X, method="median")
        target = radius_for_percentile(distances_to_centroid(X, centroid), 0.1)
        dists = distances_to_centroid(X_p, centroid)
        np.testing.assert_allclose(dists, target * (1 - 1e-3), rtol=1e-6)

    def test_points_within_radius(self, blobs):
        X, y = blobs
        attack = OptimalBoundaryAttack(0.05)
        X_p, _ = attack.generate(X, y, 20, seed=0)
        centroid = compute_centroid(X, method="median")
        target = radius_for_percentile(distances_to_centroid(X, centroid), 0.05)
        assert np.all(distances_to_centroid(X_p, centroid) <= target)

    def test_labels_oppose_placement_side(self, blobs):
        X, y = blobs
        attack = OptimalBoundaryAttack(0.0, jitter=0.0)
        X_p, y_p = attack.generate(X, y, 30, seed=0)
        surrogate = RidgeClassifier(reg=1e-2).fit(X, y)
        scores = surrogate.decision_function(X_p)
        # Each poison point sits on the side of the surrogate boundary
        # OPPOSITE to its label (that is what makes it poisonous).
        assert np.all(np.sign(scores) == -signed_labels(np.asarray(y_p)))

    def test_label_balance(self, blobs):
        X, y = blobs
        _, y_p = OptimalBoundaryAttack(0.1, label_balance=1.0).generate(X, y, 10, seed=0)
        assert np.all(np.asarray(y_p) == 1)

    def test_placement_radius_helper(self, blobs):
        X, y = blobs
        attack = OptimalBoundaryAttack(0.2)
        r = attack.placement_radius(X)
        centroid = compute_centroid(X, method="median")
        expected = (1 - 1e-3) * radius_for_percentile(
            distances_to_centroid(X, centroid), 0.2
        )
        assert r == pytest.approx(expected)

    def test_degrades_victim_more_than_random(self, blobs):
        X, y = blobs
        clean_acc = RidgeClassifier().fit(X, y).score(X, y)
        X_opt, y_opt, _ = poison_dataset(X, y, OptimalBoundaryAttack(0.0),
                                         fraction=0.25, seed=0)
        X_rnd, y_rnd, _ = poison_dataset(X, y, RandomNoiseAttack(0.0),
                                         fraction=0.25, seed=0)
        acc_opt = RidgeClassifier().fit(X_opt, y_opt).score(X, y)
        acc_rnd = RidgeClassifier().fit(X_rnd, y_rnd).score(X, y)
        assert acc_opt < clean_acc
        assert acc_opt <= acc_rnd + 0.02

    def test_invalid_percentile_raises(self):
        with pytest.raises(ValueError):
            OptimalBoundaryAttack(1.5)


class TestLabelFlip:
    def test_copies_have_flipped_labels(self, blobs):
        X, y = blobs
        X_p, y_p = LabelFlipAttack("random").generate(X, y, 25, seed=0)
        y_signed = signed_labels(y)
        for xp, yp in zip(X_p[:5], np.asarray(y_p)[:5]):
            idx = np.flatnonzero((X == xp).all(axis=1))[0]
            assert yp == -y_signed[idx]

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            LabelFlipAttack("clever")

    def test_far_strategy_picks_outliers(self, blobs):
        X, y = blobs
        X_p, _ = LabelFlipAttack("far_from_own_class").generate(X, y, 5, seed=0)
        y_signed = signed_labels(y)
        mean_pos = X[y_signed == 1].mean(axis=0)
        mean_neg = X[y_signed == -1].mean(axis=0)
        # The chosen victims are among the farthest from their own mean.
        own_dist = np.array([
            min(np.linalg.norm(xp - mean_pos), np.linalg.norm(xp - mean_neg))
            for xp in X_p
        ])
        assert own_dist.mean() > 1.0


class TestRandomNoise:
    def test_on_shell(self, blobs):
        X, y = blobs
        X_p, _ = RandomNoiseAttack(0.1, fill=False).generate(X, y, 20, seed=0)
        centroid = compute_centroid(X, method="median")
        r = radius_for_percentile(distances_to_centroid(X, centroid), 0.1)
        np.testing.assert_allclose(distances_to_centroid(X_p, centroid),
                                   r * (1 - 1e-3), rtol=1e-6)

    def test_fill_spreads_radii(self, blobs):
        X, y = blobs
        X_p, _ = RandomNoiseAttack(0.0, fill=True).generate(X, y, 50, seed=0)
        centroid = compute_centroid(X, method="median")
        d = distances_to_centroid(X_p, centroid)
        assert d.std() > 0.1


class TestFurthestPoint:
    def test_candidates_are_far(self, blobs):
        X, y = blobs
        X_p, _ = FurthestPointAttack(0.1).generate(X, y, 10, seed=0)
        centroid = compute_centroid(X, method="median")
        d_all = distances_to_centroid(X, centroid)
        cutoff = np.quantile(d_all, 0.85)
        assert np.all(distances_to_centroid(X_p, centroid) >= cutoff)

    def test_points_are_genuine_copies(self, blobs):
        X, y = blobs
        X_p, _ = FurthestPointAttack(0.2).generate(X, y, 8, seed=0)
        for xp in X_p:
            assert np.any((X == xp).all(axis=1))


class TestBilevel:
    def test_respects_radius_budget(self, blobs):
        X, y = blobs
        attack = BilevelGradientAttack(0.1, n_outer=5, step_size=0.3)
        X_p, _ = attack.generate(X, y, 15, seed=0)
        centroid = compute_centroid(X, method="median")
        budget = (1 - 1e-3) * radius_for_percentile(
            distances_to_centroid(X, centroid), 0.1
        )
        assert np.all(distances_to_centroid(X_p, centroid) <= budget * (1 + 1e-9))

    def test_damages_the_victim(self, blobs):
        X, y = blobs
        clean_acc = RidgeClassifier().fit(X, y).score(X, y)
        refined = BilevelGradientAttack(0.0, n_outer=8, step_size=0.2)
        X_r, y_r, _ = poison_dataset(X, y, refined, fraction=0.25, seed=1)
        acc_r = RidgeClassifier().fit(X_r, y_r).score(X, y)
        assert acc_r < clean_acc - 0.02


class TestPoisonDataset:
    def test_mask_and_counts(self, blobs):
        X, y = blobs
        X_m, y_m, is_poison = poison_dataset(X, y, LabelFlipAttack(), fraction=0.2,
                                             seed=0)
        n_poison = attack_budget(len(X), 0.2)
        assert is_poison.sum() == n_poison
        assert len(X_m) == len(X) + n_poison
        assert set(np.unique(y_m)) <= {-1, 1}

    def test_zero_fraction_passthrough(self, blobs):
        X, y = blobs
        X_m, y_m, is_poison = poison_dataset(X, y, LabelFlipAttack(), fraction=0.0)
        assert len(X_m) == len(X)
        assert not is_poison.any()

    def test_shuffle_mixes_poison(self, blobs):
        X, y = blobs
        _, _, is_poison = poison_dataset(X, y, LabelFlipAttack(), fraction=0.2,
                                         seed=0, shuffle=True)
        # poison should not be contiguous at the end
        assert is_poison[: len(X)].any()

    def test_no_shuffle_keeps_order(self, blobs):
        X, y = blobs
        X_m, _, is_poison = poison_dataset(X, y, LabelFlipAttack(), fraction=0.2,
                                           seed=0, shuffle=False)
        np.testing.assert_array_equal(X_m[: len(X)], X)
        assert is_poison[len(X):].all()
