"""Tests for attacker allocations and mixed strategies."""

import numpy as np
import pytest

from repro.attacks.mixed_attack import (
    AttackerMixedStrategy,
    MixedAllocationAttack,
    RadiusAllocation,
)
from repro.data.geometry import compute_centroid, distances_to_centroid


class TestRadiusAllocation:
    def test_all_at(self):
        alloc = RadiusAllocation.all_at(0.1, 50)
        assert alloc.percentiles == (0.1,)
        assert alloc.counts == (50,)
        assert alloc.total == 50

    def test_spread_uniform(self):
        alloc = RadiusAllocation.spread([0.1, 0.2, 0.3], 10)
        assert alloc.total == 10
        assert all(c >= 3 for c in alloc.counts)

    def test_spread_weighted(self):
        alloc = RadiusAllocation.spread([0.1, 0.2], 100, weights=[0.7, 0.3])
        assert alloc.counts == (70, 30)

    def test_spread_drops_zero_count_entries(self):
        alloc = RadiusAllocation.spread([0.1, 0.2], 1, weights=[0.99, 0.01])
        assert alloc.total == 1
        assert len(alloc.percentiles) == 1

    def test_remainder_distribution_exact(self):
        alloc = RadiusAllocation.spread([0.1, 0.2, 0.3], 11)
        assert alloc.total == 11

    def test_validation(self):
        with pytest.raises(ValueError):
            RadiusAllocation(percentiles=(), counts=())
        with pytest.raises(ValueError):
            RadiusAllocation(percentiles=(0.5,), counts=(0,))
        with pytest.raises(ValueError):
            RadiusAllocation(percentiles=(1.5,), counts=(3,))
        with pytest.raises(ValueError):
            RadiusAllocation(percentiles=(0.1, 0.2), counts=(1,))

    def test_frozen(self):
        alloc = RadiusAllocation.all_at(0.1, 5)
        with pytest.raises(AttributeError):
            alloc.counts = (9,)


class TestMixedAllocationAttack:
    def test_executes_allocation(self, blobs):
        X, y = blobs
        alloc = RadiusAllocation(percentiles=(0.05, 0.3), counts=(4, 6))
        X_p, y_p = MixedAllocationAttack(alloc).generate(X, y, 10, seed=0)
        assert X_p.shape == (10, X.shape[1])
        centroid = compute_centroid(X, method="median")
        d = distances_to_centroid(X_p, centroid)
        # two distinct radius groups
        assert len(np.unique(np.round(d, 6))) == 2

    def test_rescales_to_budget(self, blobs):
        X, y = blobs
        alloc = RadiusAllocation(percentiles=(0.1, 0.2), counts=(5, 5))
        X_p, _ = MixedAllocationAttack(alloc).generate(X, y, 20, seed=0)
        assert X_p.shape[0] == 20

    def test_type_check(self):
        with pytest.raises(TypeError):
            MixedAllocationAttack("not-an-allocation")


class TestAttackerMixedStrategy:
    def test_indifferent_over(self):
        strat = AttackerMixedStrategy.indifferent_over([0.1, 0.2, 0.3], 30)
        assert len(strat.allocations) == 3
        np.testing.assert_allclose(strat.probabilities, 1 / 3)

    def test_sample_deterministic(self):
        strat = AttackerMixedStrategy.indifferent_over([0.1, 0.2], 10)
        assert strat.sample(seed=0).percentiles == strat.sample(seed=0).percentiles

    def test_as_attack(self, blobs):
        X, y = blobs
        strat = AttackerMixedStrategy.indifferent_over([0.1, 0.2], 10)
        attack = strat.as_attack(seed=1)
        X_p, _ = attack.generate(X, y, 10, seed=1)
        assert X_p.shape == (10, X.shape[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            AttackerMixedStrategy(allocations=[], probabilities=np.array([]))
        with pytest.raises(ValueError):
            AttackerMixedStrategy(
                allocations=[RadiusAllocation.all_at(0.1, 5)],
                probabilities=np.array([0.5, 0.5]),
            )
