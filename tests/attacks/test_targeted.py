"""Tests for the targeted-class attack."""

import numpy as np
import pytest

from repro.attacks.base import poison_dataset
from repro.attacks.targeted import TargetedClassAttack
from repro.ml.ridge import RidgeClassifier


class TestTargetedClassAttack:
    def test_contract(self, blobs):
        X, y = blobs
        X_p, y_p = TargetedClassAttack(victim_label=1).generate(X, y, 12, seed=0)
        assert X_p.shape == (12, X.shape[1])
        # all poison carries the opposite of the victim label
        assert np.all(np.asarray(y_p) == -1)

    def test_respects_radius_budget(self, blobs):
        X, y = blobs
        attack = TargetedClassAttack(victim_label=1, target_percentile=0.1)
        X_p, _ = attack.generate(X, y, 20, seed=0)
        from repro.data.geometry import (compute_centroid, distances_to_centroid,
                                         radius_for_percentile)
        centroid = compute_centroid(X, method="median")
        budget = (1 - 1e-3) * radius_for_percentile(
            distances_to_centroid(X, centroid), 0.1
        )
        assert np.all(distances_to_centroid(X_p, centroid) <= budget * (1 + 1e-9))

    def test_reduces_victim_recall_asymmetrically(self, blobs):
        X, y = blobs
        attack = TargetedClassAttack(victim_label=1, target_percentile=0.0)
        X_m, y_m, _ = poison_dataset(X, y, attack, fraction=0.25, seed=0)
        clean_model = RidgeClassifier().fit(X, y)
        poisoned_model = RidgeClassifier().fit(X_m, y_m)
        recall_clean = attack.victim_recall(clean_model, X, y)
        recall_poisoned = attack.victim_recall(poisoned_model, X, y)
        # the victim class's recall drops...
        assert recall_poisoned < recall_clean - 0.1
        # ...more than the other class's
        other = TargetedClassAttack(victim_label=-1)
        other_recall_clean = other.victim_recall(clean_model, X, y)
        other_recall_poisoned = other.victim_recall(poisoned_model, X, y)
        victim_drop = recall_clean - recall_poisoned
        other_drop = other_recall_clean - other_recall_poisoned
        assert victim_drop > other_drop

    def test_zero_label_treated_as_negative(self):
        attack = TargetedClassAttack(victim_label=0)
        assert attack.victim_label == -1

    def test_victim_recall_requires_members(self, blobs):
        X, y = blobs
        attack = TargetedClassAttack(victim_label=1)
        model = RidgeClassifier().fit(X, y)
        with pytest.raises(ValueError, match="victim label"):
            attack.victim_recall(model, X[y == 0], y[y == 0])

    def test_deterministic(self, blobs):
        X, y = blobs
        attack = TargetedClassAttack(victim_label=1)
        X1, _ = attack.generate(X, y, 10, seed=4)
        X2, _ = attack.generate(X, y, 10, seed=4)
        np.testing.assert_array_equal(X1, X2)

    def test_spread_validation(self):
        with pytest.raises(ValueError):
            TargetedClassAttack(spread=-0.1)
