"""Fixtures for the cluster service tests.

Shard servers run **in-process** (daemon threads) wherever possible —
the protocol, handshake, scheduler and parity behaviour don't care
what process the server loop lives in, and threads keep the suite
fast.  The shard-*death* tests spawn real subprocesses instead (you
cannot ``os._exit`` a thread) — see ``test_failover.py``.
"""

import threading

import pytest

from repro.cluster.server import ShardServer
from repro.experiments.runner import make_synthetic_context
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No fault plan leaks between tests (the plan is process-wide)."""
    yield
    faults.install(None)


@pytest.fixture(scope="session")
def cluster_ctx():
    """A small synthetic context shared by the cluster suite."""
    return make_synthetic_context(seed=11, n_samples=140, n_features=3)


@pytest.fixture()
def shard_farm(cluster_ctx):
    """Start in-process shard servers on loopback; yields a factory.

    ``farm(n)`` starts ``n`` servers for ``cluster_ctx`` (or a context
    passed as ``ctx=``) and returns their addresses; everything is torn
    down at test end.
    """
    servers: list[ShardServer] = []
    threads: list[threading.Thread] = []

    def farm(n: int = 2, ctx=None, **server_kwargs):
        addresses = []
        for _ in range(n):
            server = ShardServer(ctx if ctx is not None else cluster_ctx,
                                 port=0, **server_kwargs)
            thread = threading.Thread(target=server.serve_forever,
                                      daemon=True)
            thread.start()
            servers.append(server)
            threads.append(thread)
            addresses.append((server.host, server.port))
        return addresses

    yield farm
    for server in servers:
        server.close()
    for thread in threads:
        thread.join(timeout=5.0)
