"""Shared-secret handshake auth: mutual HMAC, refusals by name."""

import warnings

import pytest

from repro.cluster import protocol
from repro.cluster.backend import ClusterBackend
from repro.cluster.scheduler import ClusterError, ShardClient, ShardRejected
from repro.engine import EvaluationEngine
from repro.engine.cache import cache_schema_version

from test_failover import sweep_batch


class TestDigests:
    def test_roles_separate_the_digests(self):
        a = protocol.compute_auth("s", "client", "fp", 3)
        b = protocol.compute_auth("s", "shard", "fp", 3)
        assert a != b  # a captured hello cannot replay as a welcome

    def test_verify_round_trip(self):
        auth = protocol.compute_auth("s", "client", "fp", 3)
        assert protocol.verify_auth("s", "client", "fp", 3, auth)
        assert not protocol.verify_auth("s", "shard", "fp", 3, auth)
        assert not protocol.verify_auth("other", "client", "fp", 3, auth)
        assert not protocol.verify_auth("s", "client", "fp", 3, None)
        assert not protocol.verify_auth("s", "client", "fp", 3, 42)

    def test_hello_and_welcome_carry_auth_only_with_a_secret(self):
        assert "auth" not in protocol.hello("fp", 3)
        assert "auth" in protocol.hello("fp", 3, secret="s")
        plain = protocol.welcome("fp", host="h", pid=1, capacity=1)
        assert "auth" not in plain
        sealed = protocol.welcome("fp", host="h", pid=1, capacity=1,
                                  schema=3, secret="s")
        assert protocol.verify_auth("s", "shard", "fp", 3, sealed["auth"])


class TestHandshakeAuth:
    def test_matching_secret_sweeps_bit_identical(self, cluster_ctx,
                                                  shard_farm):
        specs = sweep_batch(n=3, seeds=2)
        reference = EvaluationEngine("serial", cache=False).evaluate_batch(
            cluster_ctx, specs)
        addresses = shard_farm(2, secret="hunter2")
        backend = ClusterBackend(shards=addresses, secret="hunter2")
        outcomes = EvaluationEngine(backend, cache=False).evaluate_batch(
            cluster_ctx, specs)
        assert outcomes == reference

    def test_wrong_secret_is_rejected_by_name(self, cluster_ctx,
                                              shard_farm):
        addresses = shard_farm(1, secret="right")
        client = ShardClient(addresses[0], secret="wrong")
        with pytest.raises(ShardRejected, match="auth failed"):
            client.handshake(cluster_ctx.fingerprint(),
                             cache_schema_version())
        client.close()

    def test_missing_client_secret_is_rejected_by_name(self, cluster_ctx,
                                                       shard_farm):
        addresses = shard_farm(1, secret="right")
        client = ShardClient(addresses[0])
        with pytest.raises(ShardRejected, match="auth required"):
            client.handshake(cluster_ctx.fingerprint(),
                             cache_schema_version())
        client.close()

    def test_secretless_shard_refuses_a_secret_client(self, cluster_ctx,
                                                      shard_farm,
                                                      monkeypatch):
        # A half-configured fleet fails loudly instead of running open.
        monkeypatch.delenv("REPRO_CLUSTER_SECRET", raising=False)
        addresses = shard_farm(1)
        client = ShardClient(addresses[0], secret="s")
        with pytest.raises(ShardRejected, match="auth mismatch"):
            client.handshake(cluster_ctx.fingerprint(),
                             cache_schema_version())
        client.close()

    def test_rejection_never_degrades_to_local_compute(self, cluster_ctx,
                                                       shard_farm):
        """Auth refusals raise even with fallback enabled: silently
        computing locally would mask a misconfigured fleet."""
        addresses = shard_farm(2, secret="right")
        backend = ClusterBackend(shards=addresses, secret="wrong",
                                 fallback=True)
        engine = EvaluationEngine(backend, cache=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no degradation warning either
            with pytest.raises(ClusterError, match="auth"):
                engine.evaluate_batch(cluster_ctx, sweep_batch(n=2, seeds=1))

    def test_server_env_secret_is_picked_up(self, cluster_ctx, shard_farm,
                                            monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_SECRET", "from-env")
        addresses = shard_farm(1)
        client = ShardClient(addresses[0], secret="from-env")
        reply = client.handshake(cluster_ctx.fingerprint(),
                                 cache_schema_version())
        assert reply["type"] == "welcome"
        client.close()
