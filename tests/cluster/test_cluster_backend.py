"""Cluster backend: handshake, parity with serial, scheduler behaviour."""

import numpy as np
import pytest

from repro.cluster.backend import ClusterBackend, parse_shard_addresses
from repro.cluster.scheduler import (
    ClusterError,
    ClusterScheduler,
    ShardClient,
    ShardError,
)
from repro.engine import (
    AttackSpec,
    DefenseSpec,
    EvaluationEngine,
    RoundSpec,
    cache_schema_version,
)
from repro.experiments.runner import make_synthetic_context


def batch(n=3, seeds=2):
    specs = []
    for p in np.linspace(0.0, 0.3, n):
        for s in range(seeds):
            specs.append(RoundSpec(filter_percentile=float(p), attack=None,
                                   seed=50 + s))
            specs.append(RoundSpec(filter_percentile=float(p),
                                   attack=AttackSpec("boundary", float(p)),
                                   poison_fraction=0.2, seed=50 + s))
    return specs


class TestParseAddresses:
    def test_formats(self):
        assert parse_shard_addresses(None) == []
        assert parse_shard_addresses("") == []
        assert parse_shard_addresses("a:1,b:2") == [("a", 1), ("b", 2)]
        assert parse_shard_addresses("a:1 b:2") == [("a", 1), ("b", 2)]

    def test_bad_address_raises(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_shard_addresses("nocolon")
        with pytest.raises(ValueError, match="not an integer"):
            parse_shard_addresses("host:http")


class TestClusterParity:
    """The acceptance bar: cluster == serial, bit for bit."""

    def test_two_shards_match_serial(self, cluster_ctx, shard_farm):
        specs = batch()
        serial = EvaluationEngine("serial", cache=False)
        cluster = EvaluationEngine(
            ClusterBackend(shards=shard_farm(2)), cache=False)
        assert cluster.evaluate_batch(cluster_ctx, specs) == \
            serial.evaluate_batch(cluster_ctx, specs)

    def test_cache_keys_and_state_match_serial(self, cluster_ctx, shard_farm):
        """Remote results enter the cache under exactly the serial keys."""
        specs = batch(n=2)
        serial = EvaluationEngine("serial", cache=True)
        cluster = EvaluationEngine(
            ClusterBackend(shards=shard_farm(2)), cache=True)
        assert serial.evaluate_batch(cluster_ctx, specs) == \
            cluster.evaluate_batch(cluster_ctx, specs)
        assert sorted(serial.cache._memory) == sorted(cluster.cache._memory)
        assert serial.cache._memory == cluster.cache._memory

    def test_warm_cache_serves_without_shard_contact(self, cluster_ctx,
                                                     shard_farm):
        specs = batch(n=2)
        engine = EvaluationEngine(
            ClusterBackend(shards=shard_farm(1)), cache=True)
        first = engine.evaluate_batch(cluster_ctx, specs)
        computed = engine.rounds_computed
        second = engine.evaluate_batch(cluster_ctx, specs)
        assert first == second
        assert engine.rounds_computed == computed

    def test_mixed_families_run_remotely(self, cluster_ctx, shard_farm):
        """Non-radius defenses and victims materialise shard-side."""
        specs = [
            RoundSpec(defense=DefenseSpec("slab_filter", 0.15),
                      attack=AttackSpec("label-flip"),
                      poison_fraction=0.2, seed=5),
            RoundSpec(defense=DefenseSpec("slab_filter", 0.15,
                                          {"axis": "clean"}),
                      attack=AttackSpec("boundary", 0.1),
                      poison_fraction=0.2, seed=5),
        ]
        serial = EvaluationEngine("serial", cache=False)
        cluster = EvaluationEngine(
            ClusterBackend(shards=shard_farm(2)), cache=False)
        assert cluster.evaluate_batch(cluster_ctx, specs) == \
            serial.evaluate_batch(cluster_ctx, specs)


class TestHandshake:
    def test_mismatched_context_is_refused(self, cluster_ctx, shard_farm):
        addresses = shard_farm(1)
        other = make_synthetic_context(seed=99, n_samples=100, n_features=3)
        backend = ClusterBackend(shards=addresses)
        with pytest.raises(ClusterError, match="fingerprint mismatch"):
            backend.run(other, batch(n=1, seeds=1))

    def test_matching_handshake_reports_capacity(self, cluster_ctx,
                                                 shard_farm):
        (address,) = shard_farm(1)
        client = ShardClient(address)
        try:
            info = client.handshake(cluster_ctx.fingerprint(),
                                    cache_schema_version())
            assert info["type"] == "welcome"
            assert info["capacity"] == 1
        finally:
            client.close()

    def test_wrong_schema_is_refused(self, cluster_ctx, shard_farm):
        (address,) = shard_farm(1)
        client = ShardClient(address)
        try:
            with pytest.raises(ShardError, match="schema mismatch"):
                client.handshake(cluster_ctx.fingerprint(),
                                 cache_schema_version() + 1)
        finally:
            client.close()

    def test_no_live_shard_raises_cluster_error(self, cluster_ctx):
        # fallback=False: the default would degrade to the serial
        # backend instead of raising (covered in test_resilience).
        backend = ClusterBackend(shards=[("127.0.0.1", 1)],
                                 timeout=0.5, retries=0, fallback=False)
        with pytest.raises(ClusterError, match="no shard accepted"):
            backend.run(cluster_ctx, batch(n=1, seeds=1))

    def test_deterministic_round_failure_surfaces_not_cascades(
            self, cluster_ctx, shard_farm):
        """A spec whose *round* raises on a healthy shard aborts the
        batch with that error — the shard is not retired and the chunk
        is not retried elsewhere (it would fail identically and mask
        the real exception)."""
        from repro.cluster.scheduler import ChunkExecutionError

        addresses = shard_farm(2)
        backend = ClusterBackend(shards=addresses)
        engine = EvaluationEngine(backend, cache=False)
        # "mixed" without its required percentiles param raises in the
        # builder, on the shard, deterministically.
        bad = [RoundSpec(attack=AttackSpec("mixed", 0.1),
                         poison_fraction=0.2, seed=1)]
        with pytest.raises(ChunkExecutionError, match="percentiles"):
            engine.evaluate_batch(cluster_ctx, bad)
        # both shards survive and keep serving good batches
        good = batch(n=2, seeds=1)
        reference = EvaluationEngine("serial", cache=False)
        assert engine.evaluate_batch(cluster_ctx, good) == \
            reference.evaluate_batch(cluster_ctx, good)

    def test_slow_chunk_outlasting_timeout_is_not_a_dead_shard(
            self, cluster_ctx, shard_farm):
        """The timeout bounds connect + handshake only.  A chunk whose
        execution outlasts it must complete normally — under TCP a
        timer cannot tell "still computing" from "hung", while a truly
        dead shard surfaces as a reset, so reaping slow chunks would
        retire healthy shards and abort retryable work."""
        addresses = shard_farm(1)
        specs = batch(n=3, seeds=2)  # one chunk, far more than 50ms of work
        backend = ClusterBackend(shards=addresses, timeout=0.05,
                                 min_chunk=len(specs),
                                 max_chunk=len(specs))
        engine = EvaluationEngine(backend, cache=False)
        reference = EvaluationEngine("serial", cache=False)
        assert engine.evaluate_batch(cluster_ctx, specs) == \
            reference.evaluate_batch(cluster_ctx, specs)


class _StubClient:
    """Scheduler stub that serves every chunk instantly."""

    name = "stub"

    def __init__(self):
        self.calls = 0

    def run_chunk(self, chunk_id, specs):
        self.calls += 1
        return [f"out-{s}" for s in specs]

    def close(self):
        pass


class _DyingClient(_StubClient):
    """Fails every chunk; signals ``died`` after the first failure."""

    name = "dying-stub"

    def __init__(self, died):
        super().__init__()
        self.died = died

    def run_chunk(self, chunk_id, specs):
        self.calls += 1
        self.died.set()
        raise ShardError("stub shard died")


class _WaitingClient(_StubClient):
    """Healthy, but serves its first chunk only after ``died`` fires —
    guarantees the dying shard really took (and lost) a chunk first."""

    name = "waiting-stub"

    def __init__(self, died):
        super().__init__()
        self.died = died

    def run_chunk(self, chunk_id, specs):
        assert self.died.wait(timeout=10.0)
        return super().run_chunk(chunk_id, specs)


class TestScheduler:
    def test_requeued_chunk_is_never_dropped(self):
        import threading

        died = threading.Event()
        healthy = _WaitingClient(died)
        dying = _DyingClient(died)
        scheduler = ClusterScheduler([healthy, dying], min_chunk=2,
                                     max_chunk=4)
        specs = [f"s{i}" for i in range(20)]
        delivered = list(scheduler.run_iter(specs))
        indices = [i for i, _ in delivered]
        # exactly once: the dead shard's chunk came back via the
        # survivor, nothing dropped, nothing duplicated
        assert sorted(indices) == list(range(20))
        assert len(indices) == len(set(indices))
        results = dict(delivered)
        assert all(results[i] == f"out-s{i}" for i in range(20))
        assert dying.calls == 1
        assert len(scheduler.failures) == 1

    def test_all_shards_dead_raises_with_outstanding_count(self):
        import threading

        scheduler = ClusterScheduler([_DyingClient(threading.Event())])
        with pytest.raises(ClusterError, match="outstanding"):
            list(scheduler.run_iter(["a", "b", "c"]))

    def test_adaptive_chunks_grow_on_fast_shards(self):
        client = _StubClient()
        scheduler = ClusterScheduler([client], min_chunk=1, max_chunk=64,
                                     target_seconds=10.0)
        list(scheduler.run_iter([f"s{i}" for i in range(40)]))
        # instant chunks against a 10s target: growth is capped at 2x
        # per round trip, so 40 items take ~log2(40) + residual trips,
        # far fewer than one per item
        assert client.calls <= 8

    def test_chunk_bounds_validated(self):
        with pytest.raises(ValueError, match="min_chunk"):
            ClusterScheduler([_StubClient()], min_chunk=0)
        with pytest.raises(ClusterError, match="no live shards"):
            ClusterScheduler([])
