"""Failure injection against real shard processes.

These tests spawn actual ``python -m repro.cluster`` subprocesses —
a thread cannot ``os._exit`` — and exercise the two acceptance
behaviours: a shard killed mid-sweep never loses work, and the
autospawned localhost pool gives ``EvaluationEngine("cluster")``
with no configuration at all.
"""

import os
import subprocess
import sys
import tempfile
import time

import numpy as np
import pytest

from repro.cluster.backend import ClusterBackend
from repro.cluster.server import CHAOS_EXIT_CODE
from repro.engine import AttackSpec, EvaluationEngine, RoundSpec
from repro.experiments.runner import save_context


def _spawn_shard(ctx_file, *extra):
    import repro

    env = dict(os.environ)
    pkg_root = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = pkg_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cluster",
         "--context-file", ctx_file, "--port", "0", *extra],
        stdout=subprocess.PIPE, text=True, env=env,
    )
    line = proc.stdout.readline()
    assert line.startswith("READY "), f"shard never became ready: {line!r}"
    fields = dict(kv.split("=", 1) for kv in line.split()[1:])
    return proc, (fields["host"], int(fields["port"]))


def sweep_batch(n=4, seeds=3):
    specs = []
    for p in np.linspace(0.0, 0.3, n):
        for s in range(seeds):
            specs.append(RoundSpec(filter_percentile=float(p),
                                   attack=AttackSpec("boundary", float(p)),
                                   poison_fraction=0.2, seed=200 + s))
    return specs


@pytest.fixture()
def ctx_file(cluster_ctx, tmp_path):
    path = str(tmp_path / "ctx.pkl")
    save_context(cluster_ctx, path)
    return path


class TestShardDeath:
    def test_killed_shard_mid_sweep_loses_no_work(self, cluster_ctx,
                                                  ctx_file):
        """One shard hard-exits mid-chunk after 3 rounds; the survivor
        absorbs the requeued work and the sweep stays bit-identical."""
        specs = sweep_batch()
        reference = EvaluationEngine("serial",
                                     cache=False).evaluate_batch(
            cluster_ctx, specs)

        survivor, chaotic = None, None
        try:
            survivor, addr_a = _spawn_shard(ctx_file)
            chaotic, addr_b = _spawn_shard(ctx_file,
                                           "--chaos-exit-after", "3")
            backend = ClusterBackend(shards=[addr_a, addr_b],
                                     min_chunk=2, max_chunk=4)
            engine = EvaluationEngine(backend, cache=False)
            outcomes = engine.evaluate_batch(cluster_ctx, specs)
            assert outcomes == reference
            # the chaotic shard really died, with the chaos exit code
            deadline = time.monotonic() + 10.0
            while chaotic.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            assert chaotic.returncode == CHAOS_EXIT_CODE
        finally:
            for proc in (survivor, chaotic):
                if proc is not None:
                    if proc.poll() is None:
                        proc.terminate()
                        proc.wait(timeout=5.0)
                    proc.stdout.close()


class TestAutospawn:
    def test_cluster_backend_autospawns_localhost_shards(
            self, cluster_ctx, monkeypatch):
        """`EvaluationEngine("cluster")` with nothing configured spawns
        two loopback shards and matches serial bit for bit."""
        monkeypatch.delenv("REPRO_CLUSTER_SHARDS", raising=False)
        specs = sweep_batch(n=3, seeds=2)
        reference = EvaluationEngine("serial",
                                     cache=False).evaluate_batch(
            cluster_ctx, specs)
        engine = EvaluationEngine("cluster", jobs=2, cache=False)
        try:
            assert engine.evaluate_batch(cluster_ctx, specs) == reference
            pool = engine.backend._pool
            assert pool is not None
            procs = list(pool.processes)
            assert len(procs) == 2
            assert all(p.poll() is None for p in procs)
        finally:
            engine.backend.close()
        assert all(p.poll() is not None for p in procs)
