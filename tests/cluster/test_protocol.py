"""Wire-protocol unit tests: framing, errors, handshake messages."""

import pickle
import socket
import struct
import threading

import pytest

from repro.cluster import protocol


def _pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestFraming:
    def test_roundtrip(self):
        a, b = _pair()
        try:
            message = {"type": "hello", "payload": list(range(100)),
                       "nested": {"x": 1.5}}
            protocol.send_message(a, message)
            assert protocol.recv_message(b) == message
        finally:
            a.close()
            b.close()

    def test_multiple_messages_stay_separate(self):
        a, b = _pair()
        try:
            for i in range(5):
                protocol.send_message(a, {"type": "ping", "i": i})
            for i in range(5):
                assert protocol.recv_message(b)["i"] == i
        finally:
            a.close()
            b.close()

    def test_closed_mid_message_raises_connection_closed(self):
        a, b = _pair()
        try:
            payload = pickle.dumps({"type": "x"})
            # a full header promising more bytes than ever arrive
            a.sendall(struct.pack(">Q", len(payload) + 10) + payload)
            a.close()
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_eof_raises_connection_closed(self):
        a, b = _pair()
        a.close()
        try:
            with pytest.raises(protocol.ConnectionClosed):
                protocol.recv_message(b)
        finally:
            b.close()

    def test_garbage_payload_raises_protocol_error(self):
        a, b = _pair()
        try:
            junk = b"this is not a pickle"
            a.sendall(struct.pack(">Q", len(junk)) + junk)
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_non_dict_payload_raises_protocol_error(self):
        a, b = _pair()
        try:
            junk = pickle.dumps([1, 2, 3])
            a.sendall(struct.pack(">Q", len(junk)) + junk)
            with pytest.raises(protocol.ProtocolError):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_refused(self):
        a, b = _pair()
        try:
            a.sendall(struct.pack(">Q", protocol.MAX_MESSAGE_BYTES + 1))
            with pytest.raises(protocol.ProtocolError, match="frame limit"):
                protocol.recv_message(b)
        finally:
            a.close()
            b.close()

    def test_large_message_crosses_socket_buffers(self):
        """Messages far beyond one TCP buffer arrive intact (the send
        and recv loops genuinely handle partial transfers)."""
        a, b = _pair()
        try:
            message = {"type": "run", "blob": b"x" * (4 << 20)}
            thread = threading.Thread(
                target=protocol.send_message, args=(a, message))
            thread.start()
            received = protocol.recv_message(b)
            thread.join(timeout=10.0)
            assert received == message
        finally:
            a.close()
            b.close()


class TestMessageConstructors:
    def test_hello_welcome_reject(self):
        h = protocol.hello("fp123", 3)
        assert h["type"] == "hello"
        assert h["protocol"] == protocol.PROTOCOL_VERSION
        assert h["fingerprint"] == "fp123"
        assert h["schema"] == 3
        w = protocol.welcome("fp123", host="h", pid=1, capacity=2)
        assert w["type"] == "welcome" and w["capacity"] == 2
        r = protocol.reject("nope")
        assert r["type"] == "reject" and r["reason"] == "nope"

    def test_run_and_result(self):
        run = protocol.run_chunk(7, ["a", "b"])
        assert run == {"type": "run", "chunk_id": 7, "specs": ["a", "b"]}
        res = protocol.chunk_result(7, [1, 2])
        assert res == {"type": "result", "chunk_id": 7, "outcomes": [1, 2]}
        err = protocol.chunk_error(7, "boom")
        assert err["type"] == "error" and err["message"] == "boom"
