"""Chaos matrix: armed fault plans at every protocol stage.

Every test asserts the headline property end to end: whatever faults
fire — connect failures, handshake failures, lost chunks, dropped
replies, shard crashes, full degradation to the serial backend — the
surviving run's outcomes are **bit-identical** to the fault-free run.
Fault plans are seeded, so each of these is a regression test, not a
dice roll.
"""

import os
import subprocess
import sys
import threading
import time

import pytest

from repro.cluster.backend import ClusterBackend, ClusterDegradedWarning
from repro.cluster.scheduler import ClusterError
from repro.cluster.server import CHAOS_EXIT_CODE
from repro.engine import EvaluationEngine
from repro.resilience import faults

from test_failover import sweep_batch


@pytest.fixture(scope="module")
def reference(cluster_ctx):
    """Serial outcomes for the standard chaos batch (computed once)."""
    return EvaluationEngine("serial", cache=False).evaluate_batch(
        cluster_ctx, sweep_batch(n=4, seeds=2))


def _cluster_run(ctx, addresses, **backend_kwargs):
    backend_kwargs.setdefault("retries", 6)
    backend_kwargs.setdefault("backoff", 0.01)
    backend_kwargs.setdefault("min_chunk", 1)
    backend_kwargs.setdefault("max_chunk", 3)
    backend = ClusterBackend(shards=addresses, **backend_kwargs)
    engine = EvaluationEngine(backend, cache=False)
    outcomes = engine.evaluate_batch(ctx, sweep_batch(n=4, seeds=2))
    return outcomes, backend


class TestChaosMatrix:
    """Deterministic kills at each protocol stage, one per parameter."""

    @pytest.mark.parametrize("plan", [
        "connect:fail_first=1",
        "handshake:fail_first=1",
        "chunk_send:fail_first=1",
        "chunk_reply:drop_first=1",
        "chunk_reply:delay_ms=20",
    ])
    def test_single_stage_fault_is_bit_identical(self, cluster_ctx,
                                                 shard_farm, reference,
                                                 plan):
        addresses = shard_farm(2)
        faults.install(plan)
        outcomes, _ = _cluster_run(cluster_ctx, addresses)
        assert outcomes == reference

    def test_seeded_probabilistic_mix_is_bit_identical(self, cluster_ctx,
                                                       shard_farm,
                                                       reference):
        """The ISSUE's flagship mix: flaky connects, slowed and dropped
        replies, all at once, seeded."""
        addresses = shard_farm(2)
        faults.install("connect:fail_prob=0.3;"
                       "chunk_reply:delay_ms=5,drop_prob=0.15;seed=7")
        outcomes, backend = _cluster_run(cluster_ctx, addresses)
        assert outcomes == reference
        # dropped replies forced at least one mid-sweep rejoin
        assert backend._last_scheduler is not None

    def test_same_seed_same_fault_sequence_same_results(self, cluster_ctx,
                                                        shard_farm,
                                                        reference):
        addresses = shard_farm(2)
        for _ in range(2):
            faults.install("chunk_send:fail_prob=0.4;seed=3")
            outcomes, _ = _cluster_run(cluster_ctx, addresses)
            assert outcomes == reference


class TestRestartRejoin:
    def test_restarted_shard_rejoins_mid_sweep(self, cluster_ctx,
                                               tmp_path):
        """The lone shard crashes after 3 rounds (armed via REPRO_FAULTS
        in its environment); a watcher restarts it at the *same*
        address; the worker's retry schedule reconnects and the sweep
        finishes bit-identical — with zero surviving shards in between.
        """
        from repro.experiments.runner import save_context

        ctx_file = str(tmp_path / "ctx.pkl")
        save_context(cluster_ctx, ctx_file)
        specs = sweep_batch(n=4, seeds=2)
        reference = EvaluationEngine("serial", cache=False).evaluate_batch(
            cluster_ctx, specs)

        procs = []

        def spawn(port, chaos_env=None):
            import repro

            env = dict(os.environ)
            pkg_root = os.path.dirname(os.path.dirname(
                os.path.abspath(repro.__file__)))
            env["PYTHONPATH"] = pkg_root + os.pathsep + \
                env.get("PYTHONPATH", "")
            env.pop("REPRO_FAULTS", None)
            if chaos_env:
                env["REPRO_FAULTS"] = chaos_env
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.cluster",
                 "--context-file", ctx_file, "--port", str(port)],
                stdout=subprocess.PIPE, text=True, env=env)
            procs.append(proc)
            line = proc.stdout.readline()
            assert line.startswith("READY "), f"no READY: {line!r}"
            fields = dict(kv.split("=", 1) for kv in line.split()[1:])
            return proc, (fields["host"], int(fields["port"]))

        first, address = spawn(0, chaos_env="shard:crash_after_rounds=3")

        def respawner():
            first.wait()
            spawn(address[1])  # same port: the address clients retry

        watcher = threading.Thread(target=respawner, daemon=True)
        watcher.start()
        try:
            backend = ClusterBackend(shards=[address], min_chunk=1,
                                     max_chunk=2, retries=10, backoff=0.3,
                                     fallback=False)
            engine = EvaluationEngine(backend, cache=False)
            outcomes = engine.evaluate_batch(cluster_ctx, specs)
            assert outcomes == reference
            assert backend._last_scheduler.rejoins >= 1
            watcher.join(timeout=10.0)
            assert first.returncode == CHAOS_EXIT_CODE
        finally:
            watcher.join(timeout=10.0)
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=5.0)
                proc.stdout.close()


class TestGracefulDegradation:
    def test_all_shards_dead_degrades_to_serial(self, cluster_ctx,
                                                reference):
        backend = ClusterBackend(shards=[("127.0.0.1", 1)], timeout=0.5,
                                 retries=0)
        engine = EvaluationEngine(backend, cache=False)
        with pytest.warns(ClusterDegradedWarning, match="serial backend"):
            outcomes = engine.evaluate_batch(cluster_ctx,
                                             sweep_batch(n=4, seeds=2))
        assert outcomes == reference

    def test_mid_sweep_total_loss_degrades_for_the_remainder(
            self, cluster_ctx, tmp_path, reference):
        """The only shard dies mid-sweep and never comes back: once the
        rejoin budget is spent, the remaining rounds run serially and
        the batch still matches bit for bit."""
        from test_failover import _spawn_shard

        from repro.experiments.runner import save_context

        ctx_file = str(tmp_path / "ctx.pkl")
        save_context(cluster_ctx, ctx_file)
        proc, address = _spawn_shard(ctx_file, "--chaos-exit-after", "3")
        try:
            backend = ClusterBackend(shards=[address], min_chunk=1,
                                     max_chunk=2, retries=1, backoff=0.05)
            engine = EvaluationEngine(backend, cache=False)
            with pytest.warns(ClusterDegradedWarning):
                outcomes = engine.evaluate_batch(cluster_ctx,
                                                 sweep_batch(n=4, seeds=2))
            assert outcomes == reference
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=5.0)
            proc.stdout.close()

    def test_env_knob_disables_degradation(self, cluster_ctx, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_FALLBACK", "0")
        backend = ClusterBackend(shards=[("127.0.0.1", 1)], timeout=0.5,
                                 retries=0)
        engine = EvaluationEngine(backend, cache=False)
        with pytest.raises(ClusterError, match="no shard accepted"):
            engine.evaluate_batch(cluster_ctx, sweep_batch(n=2, seeds=1))


class TestZeroOverheadWhenOff:
    def test_disarmed_fire_is_a_cheap_noop(self):
        faults.install(None)
        start = time.perf_counter()
        for _ in range(100_000):
            faults.fire("connect")
        elapsed = time.perf_counter() - start
        # ~a global read + None check per call; generous ceiling so slow
        # CI boxes never flake.
        assert elapsed < 1.0
