"""Shard cache tier and cache-aware placement (PR 8 tentpole).

Three layers: the ``cache-query`` / ``cache-info`` protocol messages,
the shard-side disk tier (streaming per-round landing, restart
persistence), and the scheduler's locality-aware placement — including
its composition with the PR 7 fault plans, where every run must stay
bit-identical to the fault-free serial reference.
"""

import socket
import threading
import time

import pytest

from repro.cluster import protocol
from repro.cluster.backend import ClusterBackend, ClusterDegradedWarning
from repro.cluster.scheduler import ShardClient
from repro.cluster.server import CHAOS_EXIT_CODE
from repro.engine import EvaluationEngine, cache_schema_version, round_keys
from repro.experiments.runner import save_context

from test_failover import _spawn_shard, sweep_batch


@pytest.fixture(scope="module")
def reference(cluster_ctx):
    return EvaluationEngine("serial", cache=False).evaluate_batch(
        cluster_ctx, sweep_batch(n=4, seeds=3))


def _client(address, ctx):
    client = ShardClient(address)
    client.handshake(ctx.fingerprint(), cache_schema_version())
    return client


def _probe(address, schema=None, secret=None):
    """Raw pre-handshake cache-info round trip."""
    schema = cache_schema_version() if schema is None else schema
    with socket.create_connection(address, timeout=5.0) as sock:
        protocol.send_message(sock,
                              protocol.cache_info(schema, secret=secret))
        return protocol.recv_message(sock)


class TestCacheQuery:
    def test_held_subset_grows_as_rounds_land(self, cluster_ctx,
                                              shard_farm, tmp_path):
        [address] = shard_farm(1, cache_dir=str(tmp_path / "tier"))
        specs = sweep_batch(n=2, seeds=2)
        keys = round_keys(cluster_ctx.fingerprint(), specs)
        client = _client(address, cluster_ctx)
        try:
            held, stats = client.query_cache(keys)
            assert held == set() and stats["enabled"]
            client.run_chunk(1, specs[:2])
            held, stats = client.query_cache(keys)
            assert held == set(keys[:2])
            assert stats["entry_count"] == 2
        finally:
            client.close()

    def test_cacheless_shard_holds_nothing(self, cluster_ctx, shard_farm):
        [address] = shard_farm(1)
        specs = sweep_batch(n=2, seeds=1)
        client = _client(address, cluster_ctx)
        try:
            client.run_chunk(1, specs)
            held, stats = client.query_cache(
                round_keys(cluster_ctx.fingerprint(), specs))
            assert held == set()
            assert stats["enabled"] is False
        finally:
            client.close()

    def test_repeat_chunk_is_served_from_cache(self, cluster_ctx,
                                               shard_farm, tmp_path):
        [address] = shard_farm(1, cache_dir=str(tmp_path / "tier"))
        specs = sweep_batch(n=2, seeds=2)
        client = _client(address, cluster_ctx)
        try:
            first = client.run_chunk(1, specs)
            assert client.last_cache_hits == 0
            again = client.run_chunk(2, specs)
            assert client.last_cache_hits == len(specs)
            assert again == first
        finally:
            client.close()

    def test_cache_survives_shard_restart(self, cluster_ctx, shard_farm,
                                          tmp_path):
        """The disk tier is the persistence: a new server process (here
        a new in-process server) over the same directory serves the old
        results without recomputing."""
        tier = str(tmp_path / "tier")
        [first_address] = shard_farm(1, cache_dir=tier)
        specs = sweep_batch(n=2, seeds=2)
        client = _client(first_address, cluster_ctx)
        try:
            expected = client.run_chunk(1, specs)
        finally:
            client.close()
        [second_address] = shard_farm(1, cache_dir=tier)
        client = _client(second_address, cluster_ctx)
        try:
            outcomes = client.run_chunk(1, specs)
            assert client.last_cache_hits == len(specs)
            assert outcomes == expected
        finally:
            client.close()


class TestCacheInfoProbe:
    def test_probe_reports_tier_stats(self, cluster_ctx, shard_farm,
                                      tmp_path):
        [address] = shard_farm(1, cache_dir=str(tmp_path / "tier"))
        client = _client(address, cluster_ctx)
        try:
            client.run_chunk(1, sweep_batch(n=2, seeds=1))
        finally:
            client.close()
        reply = _probe(address)
        assert reply["type"] == "cache-report"
        stats = reply["stats"]
        assert stats["enabled"]
        assert stats["schema_version"] == cache_schema_version()
        assert stats["fingerprint"] == cluster_ctx.fingerprint()
        assert stats["entry_count"] == 2
        assert stats["total_bytes"] > 0

    def test_probe_on_cacheless_shard(self, shard_farm):
        [address] = shard_farm(1)
        reply = _probe(address)
        assert reply["type"] == "cache-report"
        assert reply["stats"]["enabled"] is False

    def test_probe_auth_is_enforced(self, shard_farm, tmp_path):
        [address] = shard_farm(1, secret="tier-secret",
                               cache_dir=str(tmp_path / "tier"))
        assert _probe(address)["type"] == "reject"
        assert _probe(address, secret="wrong")["type"] == "reject"
        assert _probe(address, secret="tier-secret")["type"] == \
            "cache-report"

    def test_secretless_shard_rejects_authed_probe(self, shard_farm):
        [address] = shard_farm(1)
        reply = _probe(address, secret="surprise")
        assert reply["type"] == "reject"
        assert "no REPRO_CLUSTER_SECRET" in reply["reason"]


class TestPlacement:
    def _run(self, ctx, addresses, **kwargs):
        backend = ClusterBackend(shards=addresses, min_chunk=1,
                                 max_chunk=4, **kwargs)
        engine = EvaluationEngine(backend, cache=False)
        outcomes = engine.evaluate_batch(ctx, sweep_batch(n=4, seeds=3))
        return outcomes, engine.batch_log[-1].get("cluster")

    def test_warm_fleet_recomputes_nothing(self, cluster_ctx, shard_farm,
                                           reference, tmp_path):
        addresses = shard_farm(2, cache_dir=str(tmp_path / "tier"))
        cold, telemetry = self._run(cluster_ctx, addresses)
        assert cold == reference
        assert telemetry["shard_cache_hits"] == 0
        # Second sweep from a *cold client* (fresh backend, engine cache
        # off): every round is placed on a holder and served from disk —
        # zero recompute, asserted via the shard-reported telemetry.
        specs = sweep_batch(n=4, seeds=3)
        warm, telemetry = self._run(cluster_ctx, addresses)
        assert warm == reference
        assert telemetry["placed_rounds"] == len(specs)
        assert telemetry["shard_cache_hits"] == len(specs)
        assert 0 < telemetry["placement_hits"] <= len(specs)

    def test_disjoint_tiers_place_to_the_holder(self, cluster_ctx,
                                                shard_farm, reference,
                                                tmp_path):
        """Each shard holds only what it computed; placement still
        covers the batch (every round has exactly one holder) and the
        sweep stays bit-identical whether a round is answered by its
        owner or stolen and recomputed."""
        addresses = shard_farm(1, cache_dir=str(tmp_path / "a")) + \
            shard_farm(1, cache_dir=str(tmp_path / "b"))
        self._run(cluster_ctx, addresses)
        warm, telemetry = self._run(cluster_ctx, addresses)
        assert warm == reference
        assert telemetry["placed_rounds"] == len(sweep_batch(n=4, seeds=3))
        assert telemetry["shard_cache_hits"] > 0

    def test_placement_toggle_off_still_hits_shard_cache(
            self, cluster_ctx, shard_farm, reference, tmp_path):
        addresses = shard_farm(2, cache_dir=str(tmp_path / "shared"))
        self._run(cluster_ctx, addresses)
        warm, telemetry = self._run(cluster_ctx, addresses,
                                    placement=False)
        assert warm == reference
        assert telemetry["placed_rounds"] == 0
        assert telemetry["placement_hits"] == 0
        # The shards still answer from their tier — placement only
        # decides *routing*, the cache serves either way.
        assert telemetry["shard_cache_hits"] == len(sweep_batch(n=4,
                                                               seeds=3))

    def test_engine_stats_aggregate_cluster_telemetry(
            self, cluster_ctx, shard_farm, tmp_path):
        from repro.experiments.reporting import format_engine_stats

        addresses = shard_farm(1, cache_dir=str(tmp_path / "tier"))
        backend = ClusterBackend(shards=addresses, min_chunk=1,
                                 max_chunk=4)
        engine = EvaluationEngine(backend, cache=False)
        specs = sweep_batch(n=2, seeds=2)
        engine.evaluate_batch(cluster_ctx, specs)
        engine.evaluate_batch(cluster_ctx, specs)
        stats = engine.stats
        assert stats["shard_cache_hits"] == len(specs)
        assert stats["placement_hits"] == len(specs)
        rendered = format_engine_stats(engine)
        assert "cluster placement hits" in rendered
        assert "cluster shard-cache hits" in rendered


class TestPlacementUnderChaos:
    def test_placed_shard_killed_mid_chunk_is_bit_identical(
            self, cluster_ctx, reference, tmp_path):
        """A half-warm shard owns placed chunks, crashes mid-chunk; the
        cacheless survivor absorbs the requeue (stealing the remaining
        placed work) and the sweep matches serial bit for bit."""
        ctx_file = str(tmp_path / "ctx.pkl")
        save_context(cluster_ctx, ctx_file)
        tier = str(tmp_path / "tier")
        specs = sweep_batch(n=4, seeds=3)

        warmer, warm_address = _spawn_shard(ctx_file, "--cache-dir", tier)
        try:
            client = _client(warm_address, cluster_ctx)
            try:
                client.run_chunk(1, specs[:6])  # half-warm the tier
            finally:
                client.close()
        finally:
            warmer.terminate()
            warmer.wait(timeout=5.0)
            warmer.stdout.close()

        # Threshold 1: the chaotic shard's first *computed* chunk dies
        # on its second round (cached rounds never arm the chaos
        # counter), so the crash is deterministic as long as it takes
        # any queue work at all — which its instant cache serves
        # guarantee while the survivor is busy computing.
        chaotic, addr_a = _spawn_shard(ctx_file, "--cache-dir", tier,
                                       "--chaos-exit-after", "1")
        survivor, addr_b = _spawn_shard(ctx_file)
        try:
            backend = ClusterBackend(shards=[addr_a, addr_b],
                                     min_chunk=2, max_chunk=2,
                                     retries=1, backoff=0.05)
            engine = EvaluationEngine(backend, cache=False)
            outcomes = engine.evaluate_batch(cluster_ctx, specs)
            assert outcomes == reference
            telemetry = engine.batch_log[-1]["cluster"]
            assert telemetry["placed_rounds"] == 6
            deadline = time.monotonic() + 10.0
            while chaotic.poll() is None and time.monotonic() < deadline:
                time.sleep(0.05)
            assert chaotic.returncode == CHAOS_EXIT_CODE
        finally:
            for proc in (chaotic, survivor):
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=5.0)
                proc.stdout.close()

    def test_rejoin_replays_partial_chunk_from_disk(self, cluster_ctx,
                                                    reference, tmp_path):
        """The lone shard streams each round to disk, crashes mid-chunk,
        and is restarted at the same address over the same tier: the
        requeued chunk's already-landed rounds replay from disk instead
        of recomputing (visible as shard cache hits on a cold fleet)."""
        ctx_file = str(tmp_path / "ctx.pkl")
        save_context(cluster_ctx, ctx_file)
        tier = str(tmp_path / "tier")
        specs = sweep_batch(n=4, seeds=3)

        procs = []

        def spawn(port, *extra):
            proc, address = _spawn_shard(ctx_file, "--cache-dir", tier,
                                         "--port", str(port), *extra)
            procs.append(proc)
            return proc, address

        # Fixed chunks of 2 with a crash after 3 computed rounds: the
        # second chunk lands its first round in the tier, then dies —
        # a genuinely partial chunk.
        first, address = spawn(0, "--chaos-exit-after", "3")

        def respawner():
            first.wait()
            spawn(address[1])

        watcher = threading.Thread(target=respawner, daemon=True)
        watcher.start()
        try:
            backend = ClusterBackend(shards=[address], min_chunk=2,
                                     max_chunk=2, retries=10, backoff=0.3,
                                     fallback=False)
            engine = EvaluationEngine(backend, cache=False)
            outcomes = engine.evaluate_batch(cluster_ctx, specs)
            assert outcomes == reference
            assert backend._last_scheduler.rejoins >= 1
            telemetry = engine.batch_log[-1]["cluster"]
            assert telemetry["shard_cache_hits"] >= 1
            watcher.join(timeout=10.0)
            assert first.returncode == CHAOS_EXIT_CODE
        finally:
            watcher.join(timeout=10.0)
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
                    proc.wait(timeout=5.0)
                proc.stdout.close()

    def test_all_dead_with_caches_degrades_bit_identical(
            self, cluster_ctx, reference, tmp_path):
        """PR 7 degradation composed with the cache tier: the only
        (cache-carrying) shard dies past its budget, the remainder runs
        serially, and the batch still matches the reference."""
        ctx_file = str(tmp_path / "ctx.pkl")
        save_context(cluster_ctx, ctx_file)
        proc, address = _spawn_shard(ctx_file, "--cache-dir",
                                     str(tmp_path / "tier"),
                                     "--chaos-exit-after", "3")
        try:
            backend = ClusterBackend(shards=[address], min_chunk=1,
                                     max_chunk=2, retries=1, backoff=0.05)
            engine = EvaluationEngine(backend, cache=False)
            with pytest.warns(ClusterDegradedWarning):
                outcomes = engine.evaluate_batch(cluster_ctx,
                                                 sweep_batch(n=4, seeds=3))
            assert outcomes == reference
        finally:
            if proc.poll() is None:
                proc.terminate()
                proc.wait(timeout=5.0)
            proc.stdout.close()
