"""run_study on the cluster backend: parity, streaming, resume."""

from repro.cluster.backend import ClusterBackend
from repro.engine import EvaluationEngine
from repro.study import run_study, studies

SPEC = studies.figure1(context=None, percentiles=(0.0, 0.1, 0.3),
                       poison_fraction=0.2)


class TestStudyOnCluster:
    def test_matches_serial_bit_for_bit(self, cluster_ctx, shard_farm):
        serial = run_study(SPEC, context=cluster_ctx,
                           engine=EvaluationEngine("serial", cache=False))
        clustered = run_study(
            SPEC, context=cluster_ctx,
            engine=EvaluationEngine(ClusterBackend(shards=shard_farm(2)),
                                    cache=False))
        assert clustered.payload == serial.payload
        assert clustered.study_fingerprint == serial.study_fingerprint
        assert {row["key"] for row in clustered.scenarios} == \
            {row["key"] for row in serial.scenarios}
        assert clustered.engine_stats["backend"] == "cluster"

    def test_streams_per_scenario_progress(self, cluster_ctx, shard_farm):
        calls = []
        result = run_study(
            SPEC, context=cluster_ctx,
            engine=EvaluationEngine(ClusterBackend(shards=shard_farm(2)),
                                    cache=False),
            progress=lambda done, total: calls.append((done, total)))
        assert len(calls) == result.n_rounds
        assert calls[-1] == (result.n_rounds, result.n_rounds)

    def test_grid_repeats_match_serial_with_batched_fits(self, cluster_ctx,
                                                         shard_farm):
        """A repeat grid is exactly the shape execute_rounds batches
        into lockstep fits; shard executors route through the same
        path, so cluster outcomes must stay bit-identical to serial."""
        spec = studies.grid(context=None,
                            defenses=("radius:0.1", "none"),
                            attacks=("boundary:0.05", "clean"),
                            fractions=(0.2,), n_repeats=4)
        serial = run_study(spec, context=cluster_ctx,
                           engine=EvaluationEngine("serial", cache=False))
        clustered = run_study(
            spec, context=cluster_ctx,
            engine=EvaluationEngine(ClusterBackend(shards=shard_farm(2)),
                                    cache=False))
        assert clustered.payload == serial.payload
        assert clustered.scenarios == serial.scenarios

    def test_cluster_result_warms_local_resume(self, cluster_ctx,
                                               shard_farm):
        """A study measured on the cluster resumes locally, zero rounds."""
        remote = run_study(
            SPEC, context=cluster_ctx,
            engine=EvaluationEngine(ClusterBackend(shards=shard_farm(1))))
        local = EvaluationEngine("serial")
        remote.warm_cache(local)
        rerun = run_study(SPEC, context=cluster_ctx, engine=local)
        assert rerun.rounds_computed == 0
        assert rerun.payload == remote.payload
