"""Shared fixtures: small, fast datasets and analytic payoff curves."""

import numpy as np
import pytest

from repro.core.game import PayoffCurves, PoisoningGame
from repro.data.synthetic import make_gaussian_blobs
from repro.experiments.runner import make_synthetic_context


@pytest.fixture(scope="session")
def blobs():
    """A small separable binary dataset (X, y with labels {0, 1})."""
    return make_gaussian_blobs(n_samples=240, n_features=4, separation=5.0, seed=42)


@pytest.fixture(scope="session")
def blobs_hard():
    """A harder (overlapping) dataset for metric/robustness tests."""
    return make_gaussian_blobs(n_samples=240, n_features=4, separation=1.0, seed=43)


@pytest.fixture(scope="session")
def analytic_curves():
    """Smooth analytic curves with the model's required shapes.

    ``E`` decays exponentially from 0.002 (positive everywhere on the
    domain), ``Γ`` grows quadratically from 0 — the qualitative shapes
    of the paper's Figure 1.
    """
    return PayoffCurves(
        E=lambda p: 0.002 * np.exp(-8.0 * p),
        gamma=lambda p: 0.08 * p**2,
        p_max=0.5,
    )


@pytest.fixture(scope="session")
def analytic_game(analytic_curves):
    """The poisoning game on the analytic curves with N=100."""
    return PoisoningGame(curves=analytic_curves, n_poison=100)


@pytest.fixture(scope="session")
def crossing_curves():
    """Curves where E crosses zero inside the domain (finite Ta)."""
    return PayoffCurves(
        E=lambda p: 0.003 * (0.25 - p),  # positive below p=0.25
        gamma=lambda p: 0.05 * p,
        p_max=0.5,
    )


@pytest.fixture(scope="session")
def tiny_context():
    """A fast synthetic experiment context shared across tests."""
    return make_synthetic_context(seed=0, n_samples=300, n_features=4,
                                  separation=2.5)
