"""Tests for Algorithm 1 (compute optimal defense)."""

import numpy as np
import pytest

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.equilibrium import defense_exploitability
from repro.core.game import PayoffCurves, PoisoningGame


class TestComputeOptimalDefense:
    def test_returns_valid_mixed_strategy(self, analytic_curves):
        result = compute_optimal_defense(analytic_curves, n_radii=3, n_poison=100)
        defense = result.defense
        assert defense.n_support == 3
        assert defense.probabilities.sum() == pytest.approx(1.0)
        assert np.all(np.diff(defense.percentiles) > 0)

    def test_loss_trace_monotone_non_increasing(self, analytic_curves):
        result = compute_optimal_defense(analytic_curves, n_radii=3, n_poison=100)
        trace = np.asarray(result.loss_trace)
        assert np.all(np.diff(trace) <= 1e-12)

    def test_converged_flag(self, analytic_curves):
        result = compute_optimal_defense(analytic_curves, n_radii=2, n_poison=100,
                                         max_iter=500)
        assert result.converged

    def test_equalization_holds_at_solution(self, analytic_curves):
        from repro.core.mixed_strategy import equalization_residual
        result = compute_optimal_defense(analytic_curves, n_radii=3, n_poison=100)
        assert equalization_residual(result.defense, analytic_curves) < 1e-8

    def test_beats_best_pure_strategy_in_model(self, analytic_curves):
        """The paper's headline: mixed defence loss < best pure loss.

        With E decaying and Γ rising (the analytic curves), the
        equalized mixture must achieve strictly lower expected loss
        than every pure filter strength.
        """
        N = 100
        result = compute_optimal_defense(analytic_curves, n_radii=3, n_poison=N)
        ps = analytic_curves.grid(401)
        # pure loss: the attacker sits exactly on the filter
        pure_losses = N * analytic_curves.E_vec(ps) + analytic_curves.gamma_vec(ps)
        assert result.expected_loss < pure_losses.min()

    def test_more_radii_do_not_hurt(self, analytic_curves):
        l2 = compute_optimal_defense(analytic_curves, n_radii=2, n_poison=100).expected_loss
        l4 = compute_optimal_defense(analytic_curves, n_radii=4, n_poison=100).expected_loss
        assert l4 <= l2 + 1e-6

    def test_low_exploitability(self, analytic_curves):
        N = 100
        result = compute_optimal_defense(analytic_curves, n_radii=4, n_poison=N)
        game = PoisoningGame(curves=analytic_curves, n_poison=N)
        # the attacker's best deviation gains little vs the equalized value
        exploit = defense_exploitability(game, result.defense)
        assert exploit < 0.25 * result.expected_loss

    def test_explicit_initialisation(self, analytic_curves):
        init = np.array([0.1, 0.3])
        result = compute_optimal_defense(analytic_curves, n_radii=2, n_poison=100,
                                         initial_percentiles=init, max_iter=1,
                                         epsilon=1e9)
        # one iteration from a custom start: support stays near init
        assert np.all(np.abs(result.defense.percentiles - init) < 0.1)

    def test_bad_initialisation_shape_raises(self, analytic_curves):
        with pytest.raises(ValueError, match="initial_percentiles"):
            compute_optimal_defense(analytic_curves, n_radii=3, n_poison=10,
                                    initial_percentiles=np.array([0.1, 0.2]))

    def test_vacuous_game_raises(self):
        curves = PayoffCurves(E=lambda p: -1.0, gamma=lambda p: p, p_max=0.5)
        with pytest.raises(ValueError, match="nowhere positive"):
            compute_optimal_defense(curves, n_radii=2, n_poison=10)

    def test_domain_respected(self, crossing_curves):
        # E positive only below 0.25: support must stay there
        result = compute_optimal_defense(crossing_curves, n_radii=3, n_poison=100)
        assert result.defense.innermost <= 0.25 + 1e-6

    def test_epsilon_validation(self, analytic_curves):
        with pytest.raises(ValueError, match="epsilon"):
            compute_optimal_defense(analytic_curves, n_radii=2, n_poison=10,
                                    epsilon=0.0)

    def test_support_trace_recorded(self, analytic_curves):
        result = compute_optimal_defense(analytic_curves, n_radii=2, n_poison=100)
        assert len(result.support_trace) == len(result.loss_trace)


class TestKnownOptimum:
    def test_matches_grid_search_on_two_radii(self, analytic_curves):
        """Algorithm 1's local optimum matches brute-force grid search."""
        N = 100

        def loss_on(support):
            from repro.core.mixed_strategy import equalizing_probabilities
            support = np.asarray(support)
            probs = equalizing_probabilities(support, analytic_curves)
            return (N * float(analytic_curves.E(support[-1]))
                    + float(probs @ analytic_curves.gamma_vec(support)))

        grid = np.linspace(0.01, analytic_curves.p_max - 0.01, 35)
        best = min(
            loss_on([a, b])
            for i, a in enumerate(grid) for b in grid[i + 1:]
        )
        result = compute_optimal_defense(analytic_curves, n_radii=2, n_poison=N)
        assert result.expected_loss <= best + 0.01 * abs(best)
