"""Tests for best-response functions and Proposition 1."""

import numpy as np
import pytest

from repro.core.best_response import (
    attacker_best_response,
    defender_best_response,
    find_pure_equilibrium,
    proposition1_certificate,
    ta_percentile,
    td_percentile,
)
from repro.core.game import PayoffCurves, PoisoningGame


class TestTaPercentile:
    def test_everywhere_profitable(self, analytic_game):
        # E > 0 on the whole domain -> ta = p_max
        assert ta_percentile(analytic_game) == pytest.approx(
            analytic_game.curves.p_max
        )

    def test_crossing_detected(self, crossing_curves):
        game = PoisoningGame(curves=crossing_curves, n_poison=50)
        assert ta_percentile(game) == pytest.approx(0.25, abs=0.002)

    def test_nowhere_profitable(self):
        curves = PayoffCurves(E=lambda p: -1.0, gamma=lambda p: p, p_max=0.5)
        game = PoisoningGame(curves=curves, n_poison=10)
        assert ta_percentile(game) == 0.0


class TestTdPercentile:
    def test_boundary_attack_makes_filtering_worthwhile(self, analytic_game):
        game = analytic_game
        # Attack at the boundary: E(0)*N = 0.2 dwarfs gamma, so the
        # defender's loss is minimised by filtering it out.
        td = td_percentile(game, game.all_at(0.0))
        assert td > 0.0

    def test_deep_attack_not_worth_chasing(self):
        # Gamma steep, damage tiny: best response is no filter.
        curves = PayoffCurves(E=lambda p: 1e-6 * (1 - p), gamma=lambda p: 0.5 * p,
                              p_max=0.5)
        game = PoisoningGame(curves=curves, n_poison=10)
        td = td_percentile(game, game.all_at(0.4))
        assert td == pytest.approx(0.0)


class TestAttackerBestResponse:
    def test_sits_on_filter_when_profitable(self, analytic_game):
        alloc = attacker_best_response(analytic_game, 0.1)
        assert alloc.percentiles == (0.1,)
        assert alloc.total == analytic_game.n_poison

    def test_gives_up_when_unprofitable(self, crossing_curves):
        game = PoisoningGame(curves=crossing_curves, n_poison=50)
        alloc = attacker_best_response(game, 0.4)  # beyond ta=0.25
        assert alloc.percentiles == (0.0,)


class TestDefenderBestResponse:
    def test_steps_past_profitable_attack(self, analytic_game):
        game = analytic_game
        best = defender_best_response(game, game.all_at(0.1))
        # filter just inside the attack (on the percentile axis, just above)
        assert best > 0.1
        assert best < 0.1 + 0.02

    def test_ignores_worthless_attack(self):
        curves = PayoffCurves(E=lambda p: 1e-7, gamma=lambda p: 0.3 * p, p_max=0.5)
        game = PoisoningGame(curves=curves, n_poison=10)
        assert defender_best_response(game, game.all_at(0.2)) == pytest.approx(0.0)


class TestProposition1:
    def test_no_pure_equilibrium_generic_game(self, analytic_game):
        search = find_pure_equilibrium(analytic_game, n_grid=101)
        assert not search.exists
        assert search.trace.cycle is not None or not search.trace.converged

    def test_cycle_is_the_chase(self, analytic_game):
        search = find_pure_equilibrium(analytic_game, n_grid=101)
        if search.trace.cycle:
            # the chase alternates: attacker lands on filter, defender
            # steps one grid cell past it
            assert search.trace.cycle_length >= 1

    def test_certificate_fields(self, analytic_game):
        cert = proposition1_certificate(analytic_game)
        assert 0 <= cert["ta"] <= analytic_game.curves.p_max
        assert "td_at_ta_attack" in cert
        assert cert["chase_gap_positive"]

    def test_degenerate_game_can_have_pure_ne(self):
        # If attacking never profits, (anything, no-filter) is a pure NE.
        curves = PayoffCurves(E=lambda p: -0.001, gamma=lambda p: 0.1 * p, p_max=0.5)
        game = PoisoningGame(curves=curves, n_poison=10)
        search = find_pure_equilibrium(game, n_grid=51)
        assert search.exists
        _, p_d = search.equilibrium
        assert p_d == pytest.approx(0.0)
