"""Tests for equilibrium metrics and the LP cross-check."""

import numpy as np
import pytest

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.equilibrium import (
    attacker_best_response_value,
    cross_check_with_lp,
    defense_exploitability,
)
from repro.core.game import PoisoningGame
from repro.core.mixed_strategy import MixedDefense


class TestAttackerBestResponseValue:
    def test_equalized_defense_value_is_innermost(self, analytic_game):
        defense = MixedDefense.equalized(np.array([0.05, 0.15, 0.3]),
                                         analytic_game.curves)
        value, best_p = attacker_best_response_value(analytic_game, defense)
        expected = analytic_game.n_poison * float(analytic_game.curves.E(0.3))
        assert value == pytest.approx(expected, rel=1e-6)
        # the best placement is (one of) the supported radii
        assert any(np.isclose(best_p, p) for p in defense.percentiles)

    def test_pure_defense_exploited_just_inside(self, analytic_game):
        pure = MixedDefense(percentiles=np.array([0.1]),
                            probabilities=np.array([1.0]))
        value, best_p = attacker_best_response_value(analytic_game, pure)
        # best response sits exactly on the filter (tie survives)
        assert best_p == pytest.approx(0.1, abs=1e-6)
        assert value == pytest.approx(
            analytic_game.n_poison * float(analytic_game.curves.E(0.1)), rel=1e-9
        )


class TestExploitability:
    def test_equalized_near_zero(self, analytic_game):
        defense = MixedDefense.equalized(np.array([0.05, 0.15, 0.3]),
                                         analytic_game.curves)
        assert defense_exploitability(analytic_game, defense) < 1e-9

    def test_uniform_is_exploitable(self, analytic_game):
        uniform = MixedDefense(percentiles=np.array([0.05, 0.15, 0.3]),
                               probabilities=np.full(3, 1 / 3))
        assert defense_exploitability(analytic_game, uniform) > 0.0

    def test_non_negative(self, analytic_game):
        rng = np.random.default_rng(0)
        for _ in range(5):
            ps = np.sort(rng.uniform(0.01, 0.45, 3))
            if np.any(np.diff(ps) < 1e-3):
                continue
            q = rng.dirichlet(np.ones(3))
            defense = MixedDefense(percentiles=ps, probabilities=q)
            assert defense_exploitability(analytic_game, defense) >= 0.0


class TestLPCrossCheck:
    def test_algorithm1_close_to_lp_value(self, analytic_curves):
        N = 100
        result = compute_optimal_defense(analytic_curves, n_radii=4, n_poison=N)
        game = PoisoningGame(curves=analytic_curves, n_poison=N)
        check = cross_check_with_lp(game, result.expected_loss, n_grid=81)
        # Algorithm 1's restricted-family optimum cannot beat the exact
        # (discretised) game value by more than discretisation error,
        # and should land near it.
        assert check.value_gap > -0.05 * abs(check.lp_value)
        assert abs(check.value_gap) < 0.5 * abs(check.lp_value) + 1e-3

    def test_lp_defense_support_is_mixed(self, analytic_curves):
        N = 100
        game = PoisoningGame(curves=analytic_curves, n_poison=N)
        check = cross_check_with_lp(game, 0.0, n_grid=81)
        # no pure NE -> the LP's defender strategy mixes
        assert len(check.lp_defense_support) >= 2

    def test_lp_solution_unexploitable(self, analytic_curves):
        game = PoisoningGame(curves=analytic_curves, n_poison=100)
        check = cross_check_with_lp(game, 0.0, n_grid=61)
        assert check.lp_solution.exploitability < 1e-7
