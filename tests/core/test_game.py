"""Tests for the poisoning game model."""

import numpy as np
import pytest

from repro.attacks.mixed_attack import RadiusAllocation
from repro.core.game import PayoffCurves, PoisoningGame
from repro.core.mixed_strategy import MixedDefense


class TestPayoffCurves:
    def test_vectorised_evaluation(self, analytic_curves):
        ps = [0.0, 0.1, 0.2]
        E_vals = analytic_curves.E_vec(ps)
        assert E_vals.shape == (3,)
        assert np.all(np.diff(E_vals) < 0)

    def test_grid(self, analytic_curves):
        g = analytic_curves.grid(11)
        assert g[0] == 0.0
        assert g[-1] == analytic_curves.p_max

    def test_validate_shape_passes(self, analytic_curves):
        analytic_curves.validate_shape()

    def test_validate_shape_rejects_increasing_E(self):
        bad = PayoffCurves(E=lambda p: p, gamma=lambda p: p, p_max=0.5)
        with pytest.raises(ValueError, match="E must be non-increasing"):
            bad.validate_shape()

    def test_validate_shape_rejects_decreasing_gamma(self):
        bad = PayoffCurves(E=lambda p: -p, gamma=lambda p: -p, p_max=0.5)
        with pytest.raises(ValueError, match="gamma must be non-decreasing"):
            bad.validate_shape()

    def test_validate_shape_rejects_nonzero_gamma0(self):
        bad = PayoffCurves(E=lambda p: 1.0 - p, gamma=lambda p: 0.5 + p, p_max=0.5)
        with pytest.raises(ValueError, match="gamma\\(0\\)"):
            bad.validate_shape()

    def test_p_max_bounds(self):
        with pytest.raises(ValueError):
            PayoffCurves(E=lambda p: 1.0, gamma=lambda p: 0.0, p_max=0.0)


class TestSurvivalRule:
    def test_deeper_attack_survives(self):
        assert PoisoningGame.survives(p_attack=0.3, p_defense=0.1)

    def test_shallow_attack_removed(self):
        assert not PoisoningGame.survives(p_attack=0.05, p_defense=0.1)

    def test_tie_survives(self):
        # a point exactly on the filter sphere is kept (θd >= ri)
        assert PoisoningGame.survives(p_attack=0.1, p_defense=0.1)


class TestPayoff:
    def test_surviving_allocation(self, analytic_game):
        game = analytic_game
        alloc = RadiusAllocation.all_at(0.2, game.n_poison)
        expected = game.n_poison * game.curves.E(0.2) + game.curves.gamma(0.1)
        assert game.payoff(alloc, 0.1) == pytest.approx(expected)

    def test_removed_allocation_only_gamma(self, analytic_game):
        game = analytic_game
        alloc = RadiusAllocation.all_at(0.05, game.n_poison)
        assert game.payoff(alloc, 0.2) == pytest.approx(game.curves.gamma(0.2))

    def test_partial_survival(self, analytic_game):
        game = analytic_game
        alloc = RadiusAllocation(percentiles=(0.05, 0.3), counts=(40, 60))
        expected = 60 * game.curves.E(0.3) + game.curves.gamma(0.1)
        assert game.payoff(alloc, 0.1) == pytest.approx(expected)

    def test_zero_sum(self, analytic_game):
        game = analytic_game
        alloc = game.all_at(0.2)
        assert game.attacker_payoff(alloc, 0.1) == -game.defender_payoff(alloc, 0.1)

    def test_expected_payoff_mixes(self, analytic_game):
        game = analytic_game
        defense = MixedDefense(percentiles=np.array([0.1, 0.3]),
                               probabilities=np.array([0.5, 0.5]))
        alloc = game.all_at(0.2)  # survives only the 0.1 filter
        expected = 0.5 * game.payoff(alloc, 0.1) + 0.5 * game.payoff(alloc, 0.3)
        assert game.expected_payoff(alloc, defense) == pytest.approx(expected)

    def test_per_point_value(self, analytic_game):
        game = analytic_game
        defense = MixedDefense(percentiles=np.array([0.1, 0.3]),
                               probabilities=np.array([0.4, 0.6]))
        # placement at 0.2 survives the 0.1 draw only
        value = game.per_point_value(0.2, defense)
        assert value == pytest.approx(0.4 * game.curves.E(0.2))

    def test_matrix_on_grids(self, analytic_game):
        M = analytic_game.matrix_on_grids([0.1, 0.2], [0.05, 0.15])
        assert M.shape == (2, 2)
        alloc = analytic_game.all_at(0.1)
        assert M[0, 0] == pytest.approx(analytic_game.payoff(alloc, 0.05))

    def test_n_poison_validation(self, analytic_curves):
        with pytest.raises(ValueError):
            PoisoningGame(curves=analytic_curves, n_poison=0)
