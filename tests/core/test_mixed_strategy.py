"""Tests for the mixed defence and the equalization conditions."""

import numpy as np
import pytest

from repro.core.mixed_strategy import (
    MixedDefense,
    equalization_residual,
    equalizing_probabilities,
)


@pytest.fixture
def defense(analytic_curves):
    return MixedDefense.equalized(np.array([0.05, 0.15, 0.3]), analytic_curves)


class TestConstruction:
    def test_requires_sorted(self):
        with pytest.raises(ValueError):
            MixedDefense(percentiles=np.array([0.3, 0.1]),
                         probabilities=np.array([0.5, 0.5]))

    def test_requires_matching_lengths(self):
        with pytest.raises(ValueError):
            MixedDefense(percentiles=np.array([0.1]),
                         probabilities=np.array([0.5, 0.5]))

    def test_rejects_percentile_one(self):
        with pytest.raises(ValueError):
            MixedDefense(percentiles=np.array([1.0]), probabilities=np.array([1.0]))

    def test_innermost(self, defense):
        assert defense.innermost == 0.3

    def test_n_support(self, defense):
        assert defense.n_support == 3


class TestSurvival:
    def test_deep_placement_always_survives(self, defense):
        assert defense.survival_probability(0.3) == pytest.approx(1.0)

    def test_outside_support_never_survives(self, defense):
        assert defense.survival_probability(0.01) == 0.0

    def test_monotone_in_placement(self, defense):
        ps = np.linspace(0, 0.4, 50)
        surv = [defense.survival_probability(p) for p in ps]
        assert all(a <= b + 1e-12 for a, b in zip(surv, surv[1:]))

    def test_survival_vector_is_cumsum(self, defense):
        np.testing.assert_allclose(defense.survival_vector(),
                                   np.cumsum(defense.probabilities))

    def test_tie_survives(self, defense):
        # placement exactly on a support point survives that draw
        p0 = defense.percentiles[0]
        assert defense.survival_probability(p0) == pytest.approx(
            defense.probabilities[0]
        )


class TestEqualization:
    def test_closed_form_equalizes(self, analytic_curves, defense):
        values = analytic_curves.E_vec(defense.percentiles) * defense.survival_vector()
        np.testing.assert_allclose(values, values[0], rtol=1e-10)

    def test_residual_zero_for_equalized(self, analytic_curves, defense):
        assert equalization_residual(defense, analytic_curves) < 1e-10

    def test_residual_positive_for_uniform(self, analytic_curves):
        uniform = MixedDefense(percentiles=np.array([0.05, 0.15, 0.3]),
                               probabilities=np.array([1 / 3, 1 / 3, 1 / 3]))
        assert equalization_residual(uniform, analytic_curves) > 0.01

    def test_equalized_value_is_innermost_E(self, analytic_curves, defense):
        assert defense.equalized_value(analytic_curves) == pytest.approx(
            float(analytic_curves.E(0.3))
        )

    def test_probabilities_positive(self, analytic_curves):
        probs = equalizing_probabilities(np.array([0.02, 0.1, 0.2, 0.4]),
                                         analytic_curves)
        assert np.all(probs > 0)
        assert probs.sum() == pytest.approx(1.0)

    def test_steeper_E_concentrates_on_outer_radius(self):
        from repro.core.game import PayoffCurves
        steep = PayoffCurves(E=lambda p: np.exp(-30 * p), gamma=lambda p: 0.0,
                             p_max=0.5)
        flat = PayoffCurves(E=lambda p: np.exp(-1 * p), gamma=lambda p: 0.0,
                            p_max=0.5)
        support = np.array([0.05, 0.3])
        q_steep = equalizing_probabilities(support, steep)
        q_flat = equalizing_probabilities(support, flat)
        # flat E -> the outer radius already nearly equalizes -> q1 high
        assert q_flat[0] > q_steep[0]

    def test_requires_positive_E(self, crossing_curves):
        with pytest.raises(ValueError, match="strictly positive"):
            equalizing_probabilities(np.array([0.1, 0.4]), crossing_curves)

    def test_ne_conditions(self, analytic_curves, defense):
        assert defense.satisfies_ne_conditions(analytic_curves)

    def test_pure_strategy_fails_ne_conditions(self, analytic_curves):
        pure = MixedDefense(percentiles=np.array([0.1]),
                            probabilities=np.array([1.0]))
        assert not pure.satisfies_ne_conditions(analytic_curves)


class TestSamplingAndFilters:
    def test_sample_respects_distribution(self, defense):
        draws = defense.sample(size=4000, seed=0)
        for p, q in zip(defense.percentiles, defense.probabilities):
            freq = np.mean(draws == p)
            assert freq == pytest.approx(q, abs=0.04)

    def test_single_sample_scalar(self, defense):
        assert isinstance(defense.sample(seed=0), float)

    def test_expected_gamma(self, analytic_curves, defense):
        expected = float(
            defense.probabilities @ analytic_curves.gamma_vec(defense.percentiles)
        )
        assert defense.expected_gamma(analytic_curves) == pytest.approx(expected)

    def test_as_filter_roundtrip(self, defense):
        filt = defense.as_filter(seed=0)
        np.testing.assert_allclose(filt.percentiles, defense.percentiles)
        np.testing.assert_allclose(filt.probabilities, defense.probabilities)
