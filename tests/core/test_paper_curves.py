"""Tests for the paper-calibrated payoff curves."""

import numpy as np
import pytest

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.paper_curves import (
    PAPER_N_POISON,
    PAPER_TABLE1_N2,
    PAPER_TABLE1_N3,
    paper_figure1_curves,
)


class TestCalibration:
    def test_valid_shapes(self):
        curves = paper_figure1_curves()
        curves.validate_shape()

    def test_total_boundary_damage_matches_figure1(self):
        # attacked accuracy ~0.50 vs clean ~0.88 at no filtering
        curves = paper_figure1_curves()
        assert PAPER_N_POISON * curves.E(0.0) == pytest.approx(0.38, abs=0.01)

    def test_table1_n3_equalization_ratio(self):
        # the published n=3 uniform probabilities imply E(0.094)/E(0.058)=1/2
        curves = paper_figure1_curves()
        ratio = curves.E(0.094) / curves.E(0.058)
        assert ratio == pytest.approx(0.5, abs=0.05)

    def test_damage_recovers_by_ten_percent_filtering(self):
        # Figure 1: accuracy recovers to the mid-80s at ~10 % filtering
        curves = paper_figure1_curves()
        assert PAPER_N_POISON * curves.E(0.10) < 0.06

    def test_n_poison_rescaling(self):
        big = paper_figure1_curves(n_poison=805)
        small = paper_figure1_curves(n_poison=100)
        # total damage invariant to the budget parameterisation
        assert 805 * big.E(0.1) == pytest.approx(100 * small.E(0.1))

    def test_invalid_budget_raises(self):
        with pytest.raises(ValueError):
            paper_figure1_curves(n_poison=0)


class TestAlgorithm1ReproducesTable1:
    @pytest.fixture(scope="class")
    def results(self):
        curves = paper_figure1_curves()
        return {
            n: compute_optimal_defense(curves, n, PAPER_N_POISON,
                                       epsilon=1e-12, max_iter=2000,
                                       initial_step=0.05)
            for n in (2, 3)
        }

    def test_support_radii_in_paper_band(self, results):
        for n, published in ((2, PAPER_TABLE1_N2), (3, PAPER_TABLE1_N3)):
            for ours, ref in zip(results[n].defense.percentiles,
                                 published["percentiles"]):
                assert abs(ours - ref) < 0.05

    def test_n2_probabilities_near_half(self, results):
        q = results[2].defense.probabilities
        assert abs(q[0] - PAPER_TABLE1_N2["probabilities"][0]) < 0.08

    def test_n3_probabilities_near_uniform(self, results):
        q = results[3].defense.probabilities
        assert np.all(np.abs(q - 1 / 3) < 0.09)

    def test_mixed_beats_pure(self, results):
        curves = paper_figure1_curves()
        ps = curves.grid(501)
        pure = (PAPER_N_POISON * curves.E_vec(ps) + curves.gamma_vec(ps)).min()
        assert results[2].expected_loss < pure
        assert results[3].expected_loss <= results[2].expected_loss + 1e-9
