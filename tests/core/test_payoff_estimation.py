"""Tests for isotonic regression and payoff-curve estimation."""

import numpy as np
import pytest

from repro.core.payoff_estimation import (
    estimate_payoff_curves,
    fit_monotone_curve,
    isotonic_regression,
)


class TestIsotonicRegression:
    def test_already_monotone_unchanged(self):
        y = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(isotonic_regression(y), y)

    def test_pools_violations(self):
        y = np.array([1.0, 3.0, 2.0])
        out = isotonic_regression(y)
        np.testing.assert_allclose(out, [1.0, 2.5, 2.5])

    def test_output_is_monotone(self):
        rng = np.random.default_rng(0)
        y = rng.normal(size=50)
        out = isotonic_regression(y)
        assert np.all(np.diff(out) >= -1e-12)

    def test_decreasing_mode(self):
        y = np.array([3.0, 1.0, 2.0])
        out = isotonic_regression(y, increasing=False)
        assert np.all(np.diff(out) <= 1e-12)

    def test_preserves_mean(self):
        rng = np.random.default_rng(1)
        y = rng.normal(size=30)
        assert isotonic_regression(y).mean() == pytest.approx(y.mean())

    def test_weights_shift_pool(self):
        y = np.array([2.0, 0.0])
        heavy_first = isotonic_regression(y, weights=np.array([9.0, 1.0]))
        np.testing.assert_allclose(heavy_first, [1.8, 1.8])

    def test_constant_input(self):
        y = np.full(5, 2.0)
        np.testing.assert_allclose(isotonic_regression(y), y)

    def test_validation(self):
        with pytest.raises(ValueError):
            isotonic_regression(np.array([]))
        with pytest.raises(ValueError):
            isotonic_regression(np.array([1.0]), weights=np.array([-1.0]))


class TestFitMonotoneCurve:
    def test_interpolates_clean_data(self):
        x = np.array([0.0, 0.5, 1.0])
        y = np.array([0.0, 0.5, 1.0])
        curve = fit_monotone_curve(x, y)
        assert curve(0.25) == pytest.approx(0.25, abs=0.05)

    def test_output_monotone_under_noise(self):
        rng = np.random.default_rng(2)
        x = np.linspace(0, 1, 25)
        y = x + rng.normal(0, 0.05, 25)
        curve = fit_monotone_curve(x, y, increasing=True)
        vals = [curve(t) for t in np.linspace(0, 1, 100)]
        assert np.all(np.diff(vals) >= -1e-9)

    def test_clamped_extrapolation(self):
        x = np.array([0.1, 0.5])
        y = np.array([1.0, 2.0])
        curve = fit_monotone_curve(x, y)
        assert curve(0.0) == 1.0
        assert curve(0.9) == 2.0

    def test_single_point_constant(self):
        curve = fit_monotone_curve(np.array([0.2]), np.array([5.0]))
        assert curve(0.0) == curve(1.0) == 5.0

    def test_decreasing(self):
        x = np.linspace(0, 1, 10)
        y = 1.0 - x
        curve = fit_monotone_curve(x, y, increasing=False)
        assert curve(0.0) > curve(1.0)


class TestEstimatePayoffCurves:
    @pytest.fixture
    def sweep(self):
        """Synthetic sweep with the paper's qualitative shape."""
        ps = np.array([0.0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5])
        N = 100
        true_E = 0.003 * np.exp(-10 * ps)
        true_gamma = 0.05 * ps**2
        acc_clean = 0.9 - true_gamma
        acc_attacked = acc_clean - N * true_E
        return ps, acc_clean, acc_attacked, N

    def test_gamma_anchored_at_zero(self, sweep):
        ps, clean, attacked, N = sweep
        curves = estimate_payoff_curves(ps, clean, attacked, N)
        assert curves.gamma(0.0) == 0.0

    def test_recovers_shapes(self, sweep):
        ps, clean, attacked, N = sweep
        curves = estimate_payoff_curves(ps, clean, attacked, N, p_max=0.5)
        curves.validate_shape()
        assert curves.E(0.0) > curves.E(0.3) > 0
        assert curves.gamma(0.5) > curves.gamma(0.1)

    def test_recovers_values(self, sweep):
        ps, clean, attacked, N = sweep
        curves = estimate_payoff_curves(ps, clean, attacked, N, p_max=0.5)
        assert curves.E(0.05) == pytest.approx(0.003 * np.exp(-0.5), rel=0.15)
        assert curves.gamma(0.3) == pytest.approx(0.05 * 0.09, rel=0.25)

    def test_auto_truncation_at_gap_minimum(self):
        ps = np.array([0.0, 0.1, 0.2, 0.3, 0.4])
        clean = np.full(5, 0.9)
        # gap decreases to a minimum at 0.2 then rises again
        attacked = np.array([0.5, 0.7, 0.8, 0.7, 0.6])
        curves = estimate_payoff_curves(ps, clean, attacked, 100)
        assert curves.p_max == pytest.approx(0.2)

    def test_requires_zero_percentile(self):
        with pytest.raises(ValueError, match="percentile 0"):
            estimate_payoff_curves(np.array([0.1, 0.2]), np.array([0.9, 0.9]),
                                   np.array([0.8, 0.8]), 10)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="align"):
            estimate_payoff_curves(np.array([0.0, 0.1]), np.array([0.9, 0.9]),
                                   np.array([0.8]), 10)

    def test_noise_is_smoothed(self, sweep):
        ps, clean, attacked, N = sweep
        rng = np.random.default_rng(5)
        noisy_attacked = attacked + rng.normal(0, 0.002, len(ps))
        curves = estimate_payoff_curves(ps, clean, noisy_attacked, N, p_max=0.5)
        curves.validate_shape()  # monotone despite the noise
