"""Tests for the curve-sensitivity analysis."""

import numpy as np
import pytest

from repro.core.sensitivity import (
    defense_sensitivity,
    perturb_curves,
    regret_under_misestimation,
)


class TestPerturbCurves:
    def test_zero_noise_is_identity(self, analytic_curves):
        perturbed = perturb_curves(analytic_curves, e_noise=0.0,
                                   gamma_noise=0.0, seed=0)
        for p in [0.0, 0.1, 0.3]:
            assert perturbed.E(p) == pytest.approx(analytic_curves.E(p))
            assert perturbed.gamma(p) == pytest.approx(analytic_curves.gamma(p))

    def test_preserves_positivity(self, analytic_curves):
        perturbed = perturb_curves(analytic_curves, e_noise=0.3,
                                   gamma_noise=0.3, seed=1)
        for p in np.linspace(0, 0.5, 21):
            assert perturbed.E(p) > 0

    def test_deterministic_given_seed(self, analytic_curves):
        a = perturb_curves(analytic_curves, seed=5)
        b = perturb_curves(analytic_curves, seed=5)
        assert a.E(0.2) == b.E(0.2)

    def test_negative_noise_raises(self, analytic_curves):
        with pytest.raises(ValueError):
            perturb_curves(analytic_curves, e_noise=-0.1)


class TestDefenseSensitivity:
    def test_report_shapes(self, analytic_curves):
        report = defense_sensitivity(analytic_curves, n_radii=2, n_poison=100,
                                     n_runs=8, seed=0)
        assert report.support_mean.shape == (2,)
        assert report.probability_std.shape == (2,)
        assert report.n_runs > 0

    def test_small_noise_small_dispersion(self, analytic_curves):
        tight = defense_sensitivity(analytic_curves, n_radii=2, n_poison=100,
                                    n_runs=8, e_noise=0.02, gamma_noise=0.02,
                                    seed=0)
        loose = defense_sensitivity(analytic_curves, n_radii=2, n_poison=100,
                                    n_runs=8, e_noise=0.4, gamma_noise=0.4,
                                    seed=0)
        assert tight.loss_std <= loose.loss_std + 1e-9

    def test_zero_noise_zero_dispersion(self, analytic_curves):
        report = defense_sensitivity(analytic_curves, n_radii=2, n_poison=100,
                                     n_runs=4, e_noise=0.0, gamma_noise=0.0,
                                     seed=0)
        assert report.loss_std == pytest.approx(0.0, abs=1e-12)


class TestRegret:
    def test_zero_regret_when_estimate_is_truth(self, analytic_curves):
        out = regret_under_misestimation(analytic_curves, analytic_curves,
                                         n_radii=2, n_poison=100)
        assert out["regret"] == pytest.approx(0.0, abs=1e-9)

    def test_regret_non_negative_under_misestimation(self, analytic_curves):
        estimated = perturb_curves(analytic_curves, e_noise=0.3,
                                   gamma_noise=0.3, seed=3)
        out = regret_under_misestimation(analytic_curves, estimated,
                                         n_radii=2, n_poison=100)
        assert out["regret"] >= -1e-6
        assert out["loss_with_estimate"] >= out["loss_with_truth"] - 1e-6
