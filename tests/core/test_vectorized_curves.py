"""The vectorised payoff layer must match the scalar semantics exactly."""

import pickle

import numpy as np
import pytest

from repro.core.game import PayoffCurves, PoisoningGame
from repro.core.payoff_estimation import MonotoneCurve, fit_monotone_curve


@pytest.fixture(scope="module")
def fitted_curves():
    ps = np.array([0.0, 0.05, 0.1, 0.2, 0.3, 0.5])
    E = fit_monotone_curve(ps, np.array([3.0, 2.5, 2.6, 1.2, 0.8, 0.1]) * 1e-3,
                           increasing=False)
    gamma = fit_monotone_curve(ps, np.array([0.0, 0.01, 0.008, 0.03, 0.05, 0.09]),
                               increasing=True)
    return PayoffCurves(E=E, gamma=gamma, p_max=0.5)


class TestMonotoneCurve:
    def test_fit_returns_vectorization_aware_curve(self, fitted_curves):
        assert isinstance(fitted_curves.E, MonotoneCurve)
        assert isinstance(fitted_curves.gamma, MonotoneCurve)

    def test_vector_matches_scalar_bitwise(self, fitted_curves):
        grid = fitted_curves.grid(501)
        for curve in (fitted_curves.E, fitted_curves.gamma):
            vector = curve.evaluate(grid)
            scalar = np.array([curve(float(p)) for p in grid])
            assert np.array_equal(vector, scalar)

    def test_scalar_call_returns_float(self, fitted_curves):
        assert isinstance(fitted_curves.E(0.1), float)

    def test_clamps_outside_range(self):
        curve = fit_monotone_curve(np.array([0.1, 0.2]), np.array([1.0, 2.0]))
        assert curve(0.0) == curve(0.1) == 1.0
        assert curve(0.9) == curve(0.2) == 2.0
        assert np.array_equal(curve.evaluate(np.array([0.0, 0.9])),
                              np.array([1.0, 2.0]))

    def test_unclamped_raises_outside_range(self):
        curve = fit_monotone_curve(np.array([0.1, 0.2]), np.array([1.0, 2.0]),
                                   clamp=False)
        with pytest.raises(ValueError, match="outside fitted range"):
            curve(0.5)
        with pytest.raises(ValueError, match="outside fitted range"):
            curve.evaluate(np.array([0.15, 0.5]))

    def test_single_knot_is_constant(self):
        curve = fit_monotone_curve(np.array([0.1]), np.array([0.7]))
        assert curve(0.0) == curve(0.1) == curve(0.9) == 0.7
        assert np.array_equal(curve.evaluate(np.array([0.0, 1.0])),
                              np.array([0.7, 0.7]))

    def test_pickle_round_trip(self, fitted_curves):
        restored = pickle.loads(pickle.dumps(fitted_curves.E))
        grid = np.linspace(0.0, 0.5, 101)
        assert np.array_equal(restored.evaluate(grid),
                              fitted_curves.E.evaluate(grid))

    def test_mismatched_knots_rejected(self):
        with pytest.raises(ValueError):
            MonotoneCurve(np.array([0.0, 0.1]), np.array([1.0]))


class TestVectorisedPayoffCurves:
    def test_E_vec_uses_one_interpolant_call(self, fitted_curves):
        grid = fitted_curves.grid(301)
        assert np.array_equal(fitted_curves.E_vec(grid),
                              np.array([fitted_curves.E(float(p)) for p in grid]))
        assert np.array_equal(fitted_curves.gamma_vec(grid),
                              np.array([fitted_curves.gamma(float(p)) for p in grid]))

    def test_plain_lambda_curves_still_work(self):
        curves = PayoffCurves(E=lambda p: 0.002 * np.exp(-8.0 * p),
                              gamma=lambda p: 0.08 * p ** 2, p_max=0.5)
        grid = curves.grid(101)
        assert np.allclose(curves.E_vec(grid), 0.002 * np.exp(-8.0 * grid))

    def test_branchy_scalar_lambda_falls_back(self):
        # A curve that cannot take arrays (truth-value branching) must
        # still evaluate through the per-element fallback.
        curves = PayoffCurves(E=lambda p: 0.002 if p < 0.1 else 0.001,
                              gamma=lambda p: 0.0 if p <= 0 else 0.01, p_max=0.5)
        vals = curves.E_vec(np.array([0.05, 0.2]))
        assert vals.tolist() == [0.002, 0.001]


class TestMatrixOnGrids:
    def test_matches_payoff_loop(self, fitted_curves):
        game = PoisoningGame(curves=fitted_curves, n_poison=57)
        pa = fitted_curves.grid(23)
        pd = fitted_curves.grid(19)
        fast = game.matrix_on_grids(pa, pd)
        slow = np.array([
            [game.payoff(game.all_at(float(a)), float(d)) for d in pd]
            for a in pa
        ])
        assert np.array_equal(fast, slow)

    def test_survival_ties_survive(self, fitted_curves):
        game = PoisoningGame(curves=fitted_curves, n_poison=10)
        grid = np.array([0.1, 0.2])
        matrix = game.matrix_on_grids(grid, grid)
        # Diagonal: attack exactly at the filter percentile survives.
        expected = 10 * fitted_curves.E_vec(grid) + fitted_curves.gamma_vec(grid)
        assert np.array_equal(np.diag(matrix), expected)

    def test_out_of_range_grid_rejected(self, fitted_curves):
        game = PoisoningGame(curves=fitted_curves, n_poison=10)
        with pytest.raises(ValueError, match="attacker_ps"):
            game.matrix_on_grids(np.array([-0.1]), np.array([0.1]))
        with pytest.raises(ValueError, match="defender_ps"):
            game.matrix_on_grids(np.array([0.1]), np.array([1.2]))
