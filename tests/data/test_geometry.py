"""Tests for centroid estimation and the radius/percentile map."""

import numpy as np
import pytest

from repro.data.geometry import (
    Centroid,
    RadiusPercentileMap,
    compute_centroid,
    distances_to_centroid,
    percentile_for_radius,
    radius_for_percentile,
)


@pytest.fixture
def cloud():
    rng = np.random.default_rng(0)
    return rng.normal(2.0, 1.0, size=(200, 3))


class TestComputeCentroid:
    def test_mean(self, cloud):
        c = compute_centroid(cloud, method="mean")
        np.testing.assert_allclose(c.location, cloud.mean(axis=0))

    def test_median(self, cloud):
        c = compute_centroid(cloud, method="median")
        np.testing.assert_allclose(c.location, np.median(cloud, axis=0))

    def test_trimmed_mean_between(self, cloud):
        t = compute_centroid(cloud, method="trimmed_mean", trim=0.2).location
        assert np.all(np.abs(t - np.median(cloud, axis=0)) < 1.0)

    def test_median_robust_to_outliers(self, cloud):
        contaminated = np.vstack([cloud, np.full((20, 3), 1e6)])
        med = compute_centroid(contaminated, method="median").location
        mean = compute_centroid(contaminated, method="mean").location
        clean_med = compute_centroid(cloud, method="median").location
        # 10 % contamination at n=200 shifts each coordinate's median by
        # roughly one within-quantile step — well under one sigma —
        # while the mean is dragged arbitrarily far.
        assert np.linalg.norm(med - clean_med) < 0.5
        assert np.linalg.norm(mean - clean_med) > 1000

    def test_unknown_method_raises(self, cloud):
        with pytest.raises(ValueError, match="unknown centroid method"):
            compute_centroid(cloud, method="mode")

    def test_excessive_trim_raises(self, cloud):
        with pytest.raises(ValueError, match="removes all"):
            compute_centroid(cloud, method="trimmed_mean", trim=0.5)

    def test_centroid_dataclass_validates_method(self):
        with pytest.raises(ValueError):
            Centroid(location=np.zeros(2), method="bogus")


class TestDistances:
    def test_zero_at_centroid(self, cloud):
        c = compute_centroid(cloud, method="mean")
        d = distances_to_centroid(c.location[None, :], c)
        assert d[0] == pytest.approx(0.0)

    def test_accepts_raw_array_centroid(self, cloud):
        d = distances_to_centroid(cloud, np.zeros(3))
        np.testing.assert_allclose(d, np.linalg.norm(cloud, axis=1))

    def test_dimension_mismatch_raises(self, cloud):
        with pytest.raises(ValueError, match="shape"):
            distances_to_centroid(cloud, np.zeros(5))


class TestRadiusPercentile:
    def test_p0_is_max(self):
        d = np.array([1.0, 2.0, 5.0])
        assert radius_for_percentile(d, 0.0) == 5.0

    def test_p1_is_min(self):
        d = np.array([1.0, 2.0, 5.0])
        assert radius_for_percentile(d, 1.0) == 1.0

    def test_monotone_decreasing_in_p(self):
        rng = np.random.default_rng(1)
        d = rng.pareto(1.5, 500)
        radii = [radius_for_percentile(d, p) for p in np.linspace(0, 1, 11)]
        assert all(a >= b for a, b in zip(radii, radii[1:]))

    def test_inverse_relationship(self):
        rng = np.random.default_rng(2)
        d = rng.random(1000)
        p = 0.3
        r = radius_for_percentile(d, p)
        assert percentile_for_radius(d, r) == pytest.approx(p, abs=0.01)

    def test_percentile_for_huge_radius_is_zero(self):
        assert percentile_for_radius(np.array([1.0, 2.0]), 100.0) == 0.0

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            percentile_for_radius(np.array([1.0]), -1.0)


class TestRadiusPercentileMap:
    @pytest.fixture
    def rmap(self):
        rng = np.random.default_rng(3)
        return RadiusPercentileMap(rng.pareto(1.3, 800) + 0.1)

    def test_boundary_is_max(self, rmap):
        assert rmap.boundary == rmap.distances[-1]

    def test_radius_zero_percentile_is_boundary(self, rmap):
        assert rmap.radius(0.0) == rmap.boundary

    def test_roundtrip(self, rmap):
        for p in [0.05, 0.2, 0.5]:
            assert rmap.percentile(rmap.radius(p)) == pytest.approx(p, abs=0.01)

    def test_radii_vectorised(self, rmap):
        ps = [0.1, 0.2]
        np.testing.assert_allclose(rmap.radii(ps), [rmap.radius(p) for p in ps])

    def test_rejects_negative_distances(self):
        with pytest.raises(ValueError):
            RadiusPercentileMap(np.array([-1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RadiusPercentileMap(np.array([]))
