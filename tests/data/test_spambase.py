"""Tests for the Spambase loader and surrogate."""

import os

import numpy as np
import pytest

from repro.data.spambase import (
    SPAMBASE_N_FEATURES,
    SPAMBASE_N_SAMPLES,
    SPAMBASE_SPAM_FRACTION,
    SpambaseSurrogate,
    load_spambase,
    spambase_feature_names,
)
from repro.ml.model_selection import train_test_split
from repro.ml.preprocessing import RobustScaler
from repro.ml.linear_svm import LinearSVM


class TestFeatureNames:
    def test_count(self):
        assert len(spambase_feature_names()) == SPAMBASE_N_FEATURES

    def test_canonical_entries(self):
        names = spambase_feature_names()
        assert "word_freq_free" in names
        assert "char_freq_!" in names
        assert names[-1] == "capital_run_length_total"


class TestSurrogate:
    @pytest.fixture(scope="class")
    def data(self):
        return SpambaseSurrogate(n_samples=1200, seed=0).generate()

    def test_shape(self, data):
        X, y = data
        assert X.shape == (1200, SPAMBASE_N_FEATURES)
        assert y.shape == (1200,)

    def test_spam_prior(self, data):
        _, y = data
        assert abs(y.mean() - SPAMBASE_SPAM_FRACTION) < 0.02

    def test_non_negative_features(self, data):
        X, _ = data
        assert X.min() >= 0.0

    def test_deterministic(self):
        X1, y1 = SpambaseSurrogate(n_samples=300, seed=5).generate()
        X2, y2 = SpambaseSurrogate(n_samples=300, seed=5).generate()
        np.testing.assert_array_equal(X1, X2)
        np.testing.assert_array_equal(y1, y2)

    def test_seed_changes_data(self):
        X1, _ = SpambaseSurrogate(n_samples=300, seed=1).generate()
        X2, _ = SpambaseSurrogate(n_samples=300, seed=2).generate()
        assert not np.array_equal(X1, X2)

    def test_heavy_distance_tail(self, data):
        X, _ = data
        Z = RobustScaler().fit_transform(X)
        d = np.linalg.norm(Z - np.median(Z, axis=0), axis=1)
        # Boundary at least 5x the 90th-percentile radius — the
        # geometry the game requires.
        assert d.max() / np.quantile(d, 0.9) > 5.0

    def test_svm_learnable_at_realistic_accuracy(self):
        X, y = SpambaseSurrogate(seed=0).generate()  # full 4601 instances
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, seed=0)
        scaler = RobustScaler().fit(X_tr)
        model = LinearSVM(epochs=20, batch_size=128, seed=0).fit(
            scaler.transform(X_tr), y_tr
        )
        acc = model.score(scaler.transform(X_te), y_te)
        assert 0.78 < acc < 0.97  # Spambase-like, not trivially separable

    def test_spam_fraction_validation(self):
        with pytest.raises(ValueError):
            SpambaseSurrogate(spam_fraction=0.0).generate()

    def test_word_contrast_reduces_separability(self):
        X1, y1 = SpambaseSurrogate(n_samples=1500, seed=0, word_contrast=1.0).generate()
        X0, y0 = SpambaseSurrogate(n_samples=1500, seed=0, word_contrast=0.0).generate()
        from repro.ml.ridge import RidgeClassifier
        acc1 = RidgeClassifier().fit(X1, y1).score(X1, y1)
        acc0 = RidgeClassifier().fit(X0, y0).score(X0, y0)
        assert acc1 > acc0


class TestLoader:
    def test_surrogate_fallback(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("SPAMBASE_PATH", raising=False)
        X, y, is_real = load_spambase(seed=0)
        assert not is_real
        assert X.shape == (SPAMBASE_N_SAMPLES, SPAMBASE_N_FEATURES)

    def test_no_surrogate_raises(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("SPAMBASE_PATH", raising=False)
        with pytest.raises(FileNotFoundError):
            load_spambase(allow_surrogate=False)

    def test_reads_real_file(self, tmp_path):
        rng = np.random.default_rng(0)
        data = np.column_stack([
            rng.random((20, SPAMBASE_N_FEATURES)),
            rng.integers(0, 2, 20),
        ])
        path = os.path.join(tmp_path, "spambase.data")
        np.savetxt(path, data, delimiter=",")
        X, y, is_real = load_spambase(str(path))
        assert is_real
        assert X.shape == (20, SPAMBASE_N_FEATURES)
        assert set(np.unique(y)) <= {0, 1}

    def test_rejects_malformed_file(self, tmp_path):
        path = os.path.join(tmp_path, "spambase.data")
        np.savetxt(path, np.zeros((5, 10)), delimiter=",")
        with pytest.raises(ValueError, match="does not look like"):
            load_spambase(str(path))

    def test_env_var_lookup(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(1)
        data = np.column_stack([
            rng.random((10, SPAMBASE_N_FEATURES)),
            rng.integers(0, 2, 10),
        ])
        path = os.path.join(tmp_path, "sb.data")
        np.savetxt(path, data, delimiter=",")
        monkeypatch.setenv("SPAMBASE_PATH", str(path))
        _, _, is_real = load_spambase()
        assert is_real
