"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    make_gaussian_blobs,
    make_imbalanced_mixture,
    make_two_moons,
    make_xor,
)
from repro.ml.ridge import RidgeClassifier


class TestGaussianBlobs:
    def test_shapes_and_labels(self):
        X, y = make_gaussian_blobs(101, 3, seed=0)
        assert X.shape == (101, 3)
        assert set(np.unique(y)) == {0, 1}

    def test_balanced_classes(self):
        _, y = make_gaussian_blobs(200, seed=0)
        assert y.sum() == 100

    def test_separation_controls_learnability(self):
        X_far, y_far = make_gaussian_blobs(400, separation=6.0, seed=1)
        X_near, y_near = make_gaussian_blobs(400, separation=0.5, seed=1)
        acc_far = RidgeClassifier().fit(X_far, y_far).score(X_far, y_far)
        acc_near = RidgeClassifier().fit(X_near, y_near).score(X_near, y_near)
        assert acc_far > 0.97
        assert acc_near < 0.75

    def test_deterministic(self):
        X1, _ = make_gaussian_blobs(50, seed=9)
        X2, _ = make_gaussian_blobs(50, seed=9)
        np.testing.assert_array_equal(X1, X2)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_gaussian_blobs(10, separation=-1.0)
        with pytest.raises(ValueError):
            make_gaussian_blobs(10, scale=0.0)


class TestTwoMoons:
    def test_shapes(self):
        X, y = make_two_moons(150, seed=0)
        assert X.shape == (150, 2)
        assert set(np.unique(y)) == {0, 1}

    def test_not_linearly_separable_but_learnable(self):
        X, y = make_two_moons(400, noise=0.05, seed=0)
        acc = RidgeClassifier().fit(X, y).score(X, y)
        assert 0.7 < acc < 1.0

    def test_negative_noise_raises(self):
        with pytest.raises(ValueError):
            make_two_moons(100, noise=-0.1)


class TestXor:
    def test_linear_model_near_chance(self):
        X, y = make_xor(600, scale=0.3, seed=0)
        acc = RidgeClassifier().fit(X, y).score(X, y)
        assert abs(acc - 0.5) < 0.12

    def test_label_balance(self):
        _, y = make_xor(400, seed=1)
        assert abs(y.mean() - 0.5) < 0.05

    def test_count_exact_when_not_divisible(self):
        X, y = make_xor(203, seed=2)
        assert len(X) == len(y) == 203


class TestImbalancedMixture:
    def test_positive_fraction(self):
        _, y = make_imbalanced_mixture(500, positive_fraction=0.3, seed=0)
        assert abs(y.mean() - 0.3) < 0.02

    def test_heavy_tail_flag_changes_distribution(self):
        X_heavy, _ = make_imbalanced_mixture(800, heavy_tail=True, seed=3)
        X_light, _ = make_imbalanced_mixture(800, heavy_tail=False, seed=3)
        assert np.abs(X_heavy).max() > np.abs(X_light).max()

    def test_fraction_bounds(self):
        with pytest.raises(ValueError):
            make_imbalanced_mixture(100, positive_fraction=0.0)
        with pytest.raises(ValueError):
            make_imbalanced_mixture(100, positive_fraction=1.0)
