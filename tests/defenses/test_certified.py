"""Tests for the certified radius-defence bound."""

import numpy as np
import pytest

from repro.defenses.certified import certify_radius_defense


class TestCertificate:
    @pytest.fixture(scope="class")
    def cert(self, blobs):
        X, y = blobs
        return certify_radius_defense(X, y, filter_percentile=0.1, eps=0.2,
                                      n_iter=150)

    def test_bound_at_least_clean_loss(self, cert):
        assert cert.certified_loss >= cert.clean_loss - 1e-9

    def test_attack_contribution_non_negative(self, cert):
        assert cert.attack_contribution >= 0.0

    def test_worst_points_feasible(self, blobs, cert):
        X, y = blobs
        from repro.data.geometry import (compute_centroid, distances_to_centroid,
                                         radius_for_percentile)
        centroid = compute_centroid(X, method="median")
        budget = radius_for_percentile(distances_to_centroid(X, centroid), 0.1)
        d = distances_to_centroid(cert.worst_points, centroid)
        assert np.all(d <= budget * (1 + 1e-9))

    def test_worst_labels_signed(self, cert):
        assert set(np.unique(cert.worst_labels)) <= {-1, 1}

    def test_stronger_filter_certifies_smaller_attack(self, blobs):
        """Shrinking the feasible ball can only reduce what the attacker
        can force — the certificate's counterpart of E(p) decreasing."""
        X, y = blobs
        weak = certify_radius_defense(X, y, filter_percentile=0.0, eps=0.2,
                                      n_iter=120)
        strong = certify_radius_defense(X, y, filter_percentile=0.6, eps=0.2,
                                        n_iter=120)
        assert strong.attack_contribution <= weak.attack_contribution + 0.05

    def test_larger_budget_certifies_larger_attack(self, blobs):
        X, y = blobs
        small = certify_radius_defense(X, y, filter_percentile=0.1, eps=0.05,
                                       n_iter=120)
        large = certify_radius_defense(X, y, filter_percentile=0.1, eps=0.3,
                                       n_iter=120)
        assert large.certified_loss >= small.certified_loss - 0.05

    def test_loss_trace_length(self, cert):
        assert len(cert.loss_trace) == 150

    def test_validation(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            certify_radius_defense(X, y, filter_percentile=0.1, eps=1.0)
        with pytest.raises(ValueError):
            certify_radius_defense(X, y, filter_percentile=0.1, reg=0.0)

    def test_weights_are_the_averaged_iterate(self, cert):
        assert cert.weights is not None
        assert cert.weights.shape == cert.worst_points.shape[1:]
        assert np.all(np.isfinite(cert.weights))


class TestCertifiedRadiusDefense:
    @pytest.fixture(scope="class")
    def poisoned(self):
        from repro.attacks.base import poison_dataset
        from repro.attacks.label_flip import LabelFlipAttack
        from repro.experiments.runner import make_synthetic_context

        ctx = make_synthetic_context(seed=1, n_samples=120, n_features=3)
        X, y, is_poison = poison_dataset(
            ctx.X_train, ctx.y_train, LabelFlipAttack(strategy="near_boundary"),
            fraction=0.2, seed=5)
        return X, y, is_poison

    def test_catches_in_ball_poison_the_sphere_misses(self, poisoned):
        """The loss-trim stage must do real work: near-boundary label
        flips live *inside* the ball, so a plain quantile sphere keeps
        them while the certificate's robust-model trim removes them."""
        from repro.defenses import CertifiedRadiusDefense, PercentileFilter

        X, y, is_poison = poisoned
        cert_keep = CertifiedRadiusDefense(0.1, n_iter=50).mask(X, y)
        plain_keep = PercentileFilter(0.1).mask(X, y)
        cert_caught = int((~cert_keep & is_poison).sum())
        plain_caught = int((~plain_keep & is_poison).sum())
        assert cert_caught > plain_caught

    def test_trim_respects_contamination_budget(self, poisoned):
        from repro.defenses import CertifiedRadiusDefense, PercentileFilter

        X, y, _ = poisoned
        cert_removed = int((~CertifiedRadiusDefense(
            0.1, eps=0.2, n_iter=50).mask(X, y)).sum())
        sphere_removed = int((~PercentileFilter(0.1).mask(X, y)).sum())
        assert cert_removed <= sphere_removed + int(0.2 * X.shape[0])

    def test_deterministic(self, poisoned):
        from repro.defenses import CertifiedRadiusDefense

        X, y, _ = poisoned
        a = CertifiedRadiusDefense(0.1, n_iter=30).mask(X, y)
        b = CertifiedRadiusDefense(0.1, n_iter=30).mask(X, y)
        assert np.array_equal(a, b)
