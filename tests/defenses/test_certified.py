"""Tests for the certified radius-defence bound."""

import numpy as np
import pytest

from repro.defenses.certified import certify_radius_defense


class TestCertificate:
    @pytest.fixture(scope="class")
    def cert(self, blobs):
        X, y = blobs
        return certify_radius_defense(X, y, filter_percentile=0.1, eps=0.2,
                                      n_iter=150)

    def test_bound_at_least_clean_loss(self, cert):
        assert cert.certified_loss >= cert.clean_loss - 1e-9

    def test_attack_contribution_non_negative(self, cert):
        assert cert.attack_contribution >= 0.0

    def test_worst_points_feasible(self, blobs, cert):
        X, y = blobs
        from repro.data.geometry import (compute_centroid, distances_to_centroid,
                                         radius_for_percentile)
        centroid = compute_centroid(X, method="median")
        budget = radius_for_percentile(distances_to_centroid(X, centroid), 0.1)
        d = distances_to_centroid(cert.worst_points, centroid)
        assert np.all(d <= budget * (1 + 1e-9))

    def test_worst_labels_signed(self, cert):
        assert set(np.unique(cert.worst_labels)) <= {-1, 1}

    def test_stronger_filter_certifies_smaller_attack(self, blobs):
        """Shrinking the feasible ball can only reduce what the attacker
        can force — the certificate's counterpart of E(p) decreasing."""
        X, y = blobs
        weak = certify_radius_defense(X, y, filter_percentile=0.0, eps=0.2,
                                      n_iter=120)
        strong = certify_radius_defense(X, y, filter_percentile=0.6, eps=0.2,
                                        n_iter=120)
        assert strong.attack_contribution <= weak.attack_contribution + 0.05

    def test_larger_budget_certifies_larger_attack(self, blobs):
        X, y = blobs
        small = certify_radius_defense(X, y, filter_percentile=0.1, eps=0.05,
                                       n_iter=120)
        large = certify_radius_defense(X, y, filter_percentile=0.1, eps=0.3,
                                       n_iter=120)
        assert large.certified_loss >= small.certified_loss - 0.05

    def test_loss_trace_length(self, cert):
        assert len(cert.loss_trace) == 150

    def test_validation(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            certify_radius_defense(X, y, filter_percentile=0.1, eps=1.0)
        with pytest.raises(ValueError):
            certify_radius_defense(X, y, filter_percentile=0.1, reg=0.0)
