"""Tests for the sanitisation defences."""

import numpy as np
import pytest

from repro.attacks.base import poison_dataset
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.defenses.base import defense_report
from repro.defenses.knn_sanitizer import KNNSanitizer
from repro.defenses.loss_filter import LossFilter
from repro.defenses.mixed_defense import MixedDefenseFilter
from repro.defenses.pca_detector import PCADetector
from repro.defenses.percentile_filter import PercentileFilter
from repro.defenses.radius_filter import RadiusFilter
from repro.defenses.roni import RONIDefense
from repro.data.geometry import compute_centroid, distances_to_centroid

ALL_DEFENSES = [
    RadiusFilter(5.0),
    RadiusFilter(5.0, per_class=True),
    PercentileFilter(0.1),
    KNNSanitizer(k=5),
    PCADetector(n_components=2, remove_fraction=0.1),
    LossFilter(0.1),
    RONIDefense(seed=0, batch_size=50),
]


@pytest.mark.parametrize("defense", ALL_DEFENSES, ids=lambda d: d.name())
class TestDefenseContract:
    def test_mask_shape_and_dtype(self, blobs, defense):
        X, y = blobs
        mask = defense.mask(X, y)
        assert mask.shape == (len(X),)
        assert mask.dtype == bool

    def test_sanitize_consistent_with_mask(self, blobs, defense):
        X, y = blobs
        X_s, y_s = defense.sanitize(X, y)
        assert len(X_s) == len(y_s) <= len(X)
        assert len(X_s) > 0

    def test_both_classes_survive(self, blobs, defense):
        X, y = blobs
        _, y_s = defense.sanitize(X, y)
        assert len(np.unique(y_s)) == 2


class TestRadiusFilter:
    def test_keeps_inside_sphere(self, blobs):
        X, y = blobs
        theta = 2.0
        mask = RadiusFilter(theta).mask(X, y)
        centroid = compute_centroid(X, method="median")
        d = distances_to_centroid(X, centroid)
        # everything kept is within theta (modulo class-survival guard)
        kept_d = d[mask]
        assert (kept_d <= theta).mean() > 0.99

    def test_huge_theta_keeps_everything(self, blobs):
        X, y = blobs
        assert RadiusFilter(1e9).mask(X, y).all()

    def test_tiny_theta_triggers_class_guard(self, blobs):
        X, y = blobs
        mask = RadiusFilter(1e-9).mask(X, y)
        y_kept = y[mask]
        assert set(np.unique(y_kept)) == {0, 1}

    def test_per_class_uses_class_centroids(self, blobs):
        X, y = blobs
        global_mask = RadiusFilter(3.0, per_class=False).mask(X, y)
        per_class_mask = RadiusFilter(3.0, per_class=True).mask(X, y)
        # per-class spheres centred on each class keep more points at
        # the same radius on well-separated blobs
        assert per_class_mask.sum() >= global_mask.sum()

    def test_negative_theta_raises(self):
        with pytest.raises(ValueError):
            RadiusFilter(-1.0)

    def test_removes_boundary_poison(self, blobs):
        X, y = blobs
        X_m, y_m, is_poison = poison_dataset(
            X, y, OptimalBoundaryAttack(0.0), fraction=0.2, seed=0
        )
        centroid = compute_centroid(X, method="median")
        theta = np.quantile(distances_to_centroid(X, centroid), 0.95)
        mask = RadiusFilter(theta).mask(X_m, y_m)
        report = defense_report(mask, is_poison)
        assert report.poison_recall > 0.95


class TestPercentileFilter:
    def test_removes_expected_fraction(self, blobs):
        X, y = blobs
        mask = PercentileFilter(0.2).mask(X, y)
        removed = 1.0 - mask.mean()
        assert removed == pytest.approx(0.2, abs=0.03)

    def test_zero_fraction_noop(self, blobs):
        X, y = blobs
        filt = PercentileFilter(0.0)
        assert filt.mask(X, y).all()
        assert filt.theta_ == float("inf")

    def test_theta_recorded(self, blobs):
        X, y = blobs
        filt = PercentileFilter(0.1)
        filt.mask(X, y)
        assert np.isfinite(filt.theta_)
        assert filt.theta_ > 0

    def test_removes_farthest_first(self, blobs):
        X, y = blobs
        mask = PercentileFilter(0.1).mask(X, y)
        centroid = compute_centroid(X, method="median")
        d = distances_to_centroid(X, centroid)
        assert d[~mask].min() >= d[mask].max() - 1e-9

    def test_full_fraction_rejected(self):
        with pytest.raises(ValueError):
            PercentileFilter(1.0)


class TestMixedDefenseFilter:
    def test_draws_from_support(self, blobs):
        X, y = blobs
        filt = MixedDefenseFilter([0.05, 0.2], [0.5, 0.5], seed=0)
        draws = {filt.draw() for _ in range(40)}
        assert draws == {0.05, 0.2}

    def test_mask_uses_last_draw(self, blobs):
        X, y = blobs
        filt = MixedDefenseFilter([0.05, 0.2], [0.5, 0.5], seed=1)
        mask = filt.mask(X, y)
        removed = 1.0 - mask.mean()
        assert removed == pytest.approx(filt.last_draw_, abs=0.03)

    def test_expected_fraction(self):
        filt = MixedDefenseFilter([0.1, 0.3], [0.75, 0.25], seed=0)
        assert filt.expected_fraction_removed() == pytest.approx(0.15)

    def test_degenerate_distribution(self, blobs):
        X, y = blobs
        filt = MixedDefenseFilter([0.1], [1.0], seed=0)
        assert filt.draw() == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            MixedDefenseFilter([0.1, 0.2], [0.6, 0.6])
        with pytest.raises(ValueError):
            MixedDefenseFilter([1.0], [1.0])  # percentile 1.0 not allowed


class TestKNNSanitizer:
    def test_flags_label_flips(self, blobs):
        X, y = blobs
        # flip 10 labels deep inside class 1's cluster
        y_flipped = y.copy()
        ones = np.flatnonzero(y == 1)[:10]
        y_flipped[ones] = 0
        mask = KNNSanitizer(k=7, agreement=0.5).mask(X, y_flipped)
        assert (~mask[ones]).mean() > 0.8  # most flips caught

    def test_keeps_consistent_points(self, blobs):
        X, y = blobs
        mask = KNNSanitizer(k=7).mask(X, y)
        assert mask.mean() > 0.9

    def test_k_larger_than_n(self):
        X = np.array([[0.0], [0.1], [5.0]])
        y = np.array([0, 0, 1])
        mask = KNNSanitizer(k=10, agreement=0.4).mask(X, y)
        assert mask.shape == (3,)

    def test_chunking_equivalent(self, blobs):
        X, y = blobs
        big = KNNSanitizer(k=5, chunk_size=10_000).mask(X, y)
        small = KNNSanitizer(k=5, chunk_size=16).mask(X, y)
        np.testing.assert_array_equal(big, small)

    @pytest.mark.parametrize("chunk_size", [16, 100, 10_000])
    def test_inplace_block_matches_expression_form(self, blobs, chunk_size):
        """The persistent-block distance path (PR 6) is a memory
        optimisation only: keep masks must equal the old chunked
        expression form ``col - 2.0 * gram + row`` exactly."""
        from repro.defenses.radius_filter import _ensure_class_survival
        from repro.ml.base import signed_labels

        X, y = blobs
        sanitizer = KNNSanitizer(k=5, agreement=0.5, chunk_size=chunk_size)

        y_signed = signed_labels(y)
        n = X.shape[0]
        k = min(5, n - 1)
        sq_norms = np.einsum("ij,ij->i", X, X)
        keep = np.ones(n, dtype=bool)
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            d2 = (sq_norms[start:stop, None]
                  - 2.0 * (X[start:stop] @ X.T)
                  + sq_norms[None, :])
            d2[np.arange(stop - start), np.arange(start, stop)] = np.inf
            idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
            agree = (y_signed[idx] == y_signed[start:stop, None]).mean(axis=1)
            keep[start:stop] = agree >= 0.5
        reference = _ensure_class_survival(keep, y)

        np.testing.assert_array_equal(sanitizer.mask(X, y), reference)


class TestPCADetector:
    def test_flags_off_subspace_outliers(self):
        rng = np.random.default_rng(0)
        # data on a 2-d plane inside 5-d space
        basis = rng.normal(size=(2, 5))
        X = rng.normal(size=(150, 2)) @ basis
        outliers = rng.normal(size=(10, 5)) * 5.0
        X_all = np.vstack([X, outliers])
        y = np.concatenate([np.zeros(75, int), np.ones(75, int),
                            rng.integers(0, 2, 10)])
        mask = PCADetector(n_components=2, remove_fraction=10 / 160).mask(X_all, y)
        assert (~mask[-10:]).mean() > 0.7

    def test_zero_fraction_noop(self, blobs):
        X, y = blobs
        assert PCADetector(remove_fraction=0.0).mask(X, y).all()

    def test_robust_refit_differs(self, blobs):
        X, y = blobs
        X = X.copy()
        X[:5] *= 50.0
        robust = PCADetector(n_components=2, remove_fraction=0.1, robust=True).mask(X, y)
        naive = PCADetector(n_components=2, remove_fraction=0.1, robust=False).mask(X, y)
        assert robust.shape == naive.shape


class TestLossFilter:
    def test_removes_high_loss_flips(self, blobs):
        X, y = blobs
        y_flipped = y.copy()
        ones = np.flatnonzero(y == 1)[:12]
        y_flipped[ones] = 0
        mask = LossFilter(remove_fraction=12 / len(X), n_rounds=2).mask(X, y_flipped)
        assert (~mask[ones]).mean() > 0.6

    def test_zero_fraction_noop(self, blobs):
        X, y = blobs
        assert LossFilter(remove_fraction=0.0).mask(X, y).all()

    def test_removal_budget_respected(self, blobs):
        X, y = blobs
        mask = LossFilter(remove_fraction=0.2, n_rounds=2).mask(X, y)
        assert (~mask).sum() <= int(0.2 * len(X)) + 1


class TestRONI:
    def test_rejects_planted_flips(self, blobs):
        X, y = blobs
        rng = np.random.default_rng(0)
        n_flip = 20
        idx = rng.choice(len(X), n_flip, replace=False)
        y_bad = y.copy()
        y_bad[idx] = 1 - y_bad[idx]
        mask = RONIDefense(seed=1, tolerance=0.0).mask(X, y_bad)
        flipped_removed = (~mask[idx]).mean()
        genuine_removed = (~mask[np.setdiff1d(np.arange(len(X)), idx)]).mean()
        assert flipped_removed > genuine_removed

    def test_report_metrics(self):
        keep = np.array([True, False, False, True])
        is_poison = np.array([False, True, False, False])
        report = defense_report(keep, is_poison)
        assert report.n_removed == 2
        assert report.poison_recall == 1.0
        assert report.genuine_loss == pytest.approx(1 / 3)
        assert report.precision == 0.5

    def test_report_shape_mismatch(self):
        with pytest.raises(ValueError):
            defense_report(np.ones(3, bool), np.ones(4, bool))
