"""Tests for the slab defence."""

import numpy as np
import pytest

from repro.attacks.base import poison_dataset
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.defenses.base import defense_report
from repro.defenses.slab_filter import SlabFilter


class TestSlabFilter:
    def test_contract(self, blobs):
        X, y = blobs
        mask = SlabFilter(0.1).mask(X, y)
        assert mask.shape == (len(X),)
        assert mask.dtype == bool
        assert (~mask).sum() <= int(0.1 * len(X))

    def test_zero_fraction_noop(self, blobs):
        X, y = blobs
        assert SlabFilter(0.0).mask(X, y).all()

    def test_scores_zero_on_midplane(self, blobs):
        X, y = blobs
        filt = SlabFilter(0.1)
        scores = filt.slab_scores(X, y)
        # scores are non-negative displacements along the class axis
        assert np.all(scores >= 0)

    def test_catches_boundary_attack(self, blobs):
        """Label-opposed boundary poison lies far along the class axis
        (it is placed along the discriminative direction), so the slab
        catches it even though it is also far from the centroid."""
        X, y = blobs
        X_m, y_m, is_poison = poison_dataset(
            X, y, OptimalBoundaryAttack(0.0, jitter=0.0), fraction=0.2, seed=0
        )
        filt = SlabFilter(remove_fraction=0.2)
        report = defense_report(filt.mask(X_m, y_m), is_poison)
        assert report.poison_recall > 0.8
        assert report.genuine_loss < 0.1

    def test_orthogonal_outliers_ignored(self, blobs):
        """Points far out orthogonally to the class axis have small slab
        scores — the slab is not a sphere."""
        X, y = blobs
        filt = SlabFilter(0.1)
        scores = filt.slab_scores(X, y)
        # build a point far out in a direction orthogonal to the class axis
        from repro.data.geometry import compute_centroid
        mu1 = compute_centroid(X[y == 1], method="median").location
        mu0 = compute_centroid(X[y == 0], method="median").location
        axis = (mu1 - mu0) / np.linalg.norm(mu1 - mu0)
        ortho = np.zeros_like(axis)
        ortho[np.argmin(np.abs(axis))] = 1.0
        ortho -= (ortho @ axis) * axis
        ortho /= np.linalg.norm(ortho)
        far_ortho = (0.5 * (mu1 + mu0) + 50.0 * ortho)[None, :]
        X_aug = np.vstack([X, far_ortho])
        y_aug = np.concatenate([y, [1]])
        scores_aug = SlabFilter(0.1).slab_scores(X_aug, y_aug)
        assert scores_aug[-1] < np.quantile(scores, 0.99) + 1.0

    def test_class_survival_guard(self, blobs):
        X, y = blobs
        mask = SlabFilter(0.0).mask(X, y)  # no-op, trivially keeps both
        assert set(np.unique(y[mask])) == {0, 1}

    def test_full_fraction_rejected(self):
        with pytest.raises(ValueError):
            SlabFilter(1.0)
