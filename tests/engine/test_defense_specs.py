"""Defense/victim specs: parity with direct application, every family.

Mirrors ``TestBackendParity``: for every registered defence kind, a
spec-driven round through ``EvaluationEngine.evaluate_batch`` must be
bit-identical to applying the materialised defence object directly via
``evaluate_configuration(defense=...)`` — across the serial and process
backends and across cache states.  Likewise for victim specs.
"""

import numpy as np
import pytest

from repro.defenses import (
    CertifiedRadiusDefense,
    KNNSanitizer,
    LossFilter,
    MixedDefenseFilter,
    PCADetector,
    PercentileFilter,
    RadiusFilter,
    SlabFilter,
)
from repro.defenses.roni import RONIDefense
from repro.engine import (
    AttackSpec,
    DefenseSpec,
    EvaluationEngine,
    RoundSpec,
    VictimSpec,
    materialize_defense,
    materialize_victim,
    registered_defense_kinds,
    registered_victim_kinds,
)
from repro.experiments.runner import (
    VictimFactory,
    evaluate_configuration,
    make_synthetic_context,
)
from repro.utils.rng import derive_seed

SEED = 17


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=1, n_samples=120, n_features=3)


def _clean_centroid(ctx):
    from repro.data.geometry import compute_centroid

    return compute_centroid(ctx.X_train, method=ctx.centroid_method)


# One spec per registered family, with the direct-construction recipe
# the builder mirrors.  ``direct(ctx, seed)`` builds the defence object
# the old-fashioned way — no engine, no registry.
DEFENSE_CASES = {
    "radius": (
        DefenseSpec("radius", 0.15),
        lambda ctx, seed: RadiusFilter(
            ctx.radius_map.radius(0.15), centroid_method=ctx.centroid_method,
            centroid=_clean_centroid(ctx)),
    ),
    "percentile_filter": (
        DefenseSpec("percentile_filter", 0.12),
        lambda ctx, seed: PercentileFilter(
            0.12, centroid_method=ctx.centroid_method),
    ),
    "slab_filter": (
        DefenseSpec("slab_filter", 0.1),
        lambda ctx, seed: SlabFilter(
            remove_fraction=0.1, centroid_method=ctx.centroid_method),
    ),
    "knn_sanitizer": (
        DefenseSpec("knn_sanitizer", params={"k": 5, "agreement": 0.4}),
        lambda ctx, seed: KNNSanitizer(k=5, agreement=0.4),
    ),
    "roni": (
        DefenseSpec("roni", params={"batch_size": 30}),
        lambda ctx, seed: RONIDefense(batch_size=30,
                                      seed=derive_seed(seed, "defense")),
    ),
    "loss_filter": (
        DefenseSpec("loss_filter", 0.1, params={"n_rounds": 1}),
        lambda ctx, seed: LossFilter(0.1, n_rounds=1),
    ),
    "pca_detector": (
        DefenseSpec("pca_detector", 0.1, params={"n_components": 2}),
        lambda ctx, seed: PCADetector(n_components=2, remove_fraction=0.1),
    ),
    "certified": (
        DefenseSpec("certified", 0.1, params={"n_iter": 20}),
        lambda ctx, seed: CertifiedRadiusDefense(
            0.1, n_iter=20, centroid_method=ctx.centroid_method),
    ),
    "mixed_defense": (
        DefenseSpec("mixed_defense",
                    params={"percentiles": (0.05, 0.2),
                            "probabilities": (0.5, 0.5)}),
        lambda ctx, seed: MixedDefenseFilter(
            (0.05, 0.2), (0.5, 0.5), seed=derive_seed(seed, "defense"),
            centroid_method=ctx.centroid_method),
    ),
}


def _round_spec(dspec):
    return RoundSpec(defense=dspec, attack=AttackSpec("boundary", 0.05),
                     poison_fraction=0.2, seed=SEED)


class TestEveryFamilyRegistered:
    def test_all_defense_families_covered(self):
        assert sorted(DEFENSE_CASES) == registered_defense_kinds()

    def test_all_victim_families_covered(self):
        assert registered_victim_kinds() == \
            ["logistic", "naive_bayes", "perceptron", "ridge", "svm"]


class TestDefenseSpecParity:
    """Spec-driven rounds == direct defence application, bit for bit."""

    @pytest.mark.parametrize("kind", sorted(DEFENSE_CASES))
    def test_spec_matches_direct_application(self, ctx, kind):
        dspec, direct = DEFENSE_CASES[kind]
        engine_out = EvaluationEngine("serial", cache=False).evaluate(
            ctx, _round_spec(dspec))
        attack = ctx.boundary_attack(0.05)
        direct_out = evaluate_configuration(
            ctx, defense=direct(ctx, SEED), attack=attack,
            poison_fraction=0.2, seed=SEED,
        )
        if kind == "radius":
            # The engine serves plain radius specs through the kernel
            # fast path, whose outcome labels the round by percentile
            # rather than by the realised object; the measured physics
            # must still agree exactly.
            assert engine_out.accuracy == direct_out.accuracy
            assert engine_out.n_removed == direct_out.n_removed
            assert engine_out.report == direct_out.report
        else:
            assert engine_out == direct_out

    @pytest.mark.parametrize("kind", sorted(DEFENSE_CASES))
    def test_materializer_matches_direct_construction(self, ctx, kind):
        dspec, direct = DEFENSE_CASES[kind]
        built = materialize_defense(ctx, dspec,
                                    seed=derive_seed(SEED, "defense"))
        a = built.mask(ctx.X_train, ctx.y_train)
        b = direct(ctx, SEED).mask(ctx.X_train, ctx.y_train)
        assert np.array_equal(a, b)

    def test_cached_and_uncached_identical(self, ctx):
        specs = [_round_spec(d) for d, _ in DEFENSE_CASES.values()]
        uncached = EvaluationEngine("serial", cache=False).evaluate_batch(ctx, specs)
        engine = EvaluationEngine("serial", cache=True)
        first = engine.evaluate_batch(ctx, specs)
        second = engine.evaluate_batch(ctx, specs)  # pure cache hits
        assert uncached == first == second
        assert engine.rounds_computed == len(specs)

    def test_process_backend_parity(self, ctx):
        specs = [_round_spec(d) for d, _ in DEFENSE_CASES.values()]
        serial = EvaluationEngine("serial", cache=False).evaluate_batch(ctx, specs)
        process = EvaluationEngine("process", jobs=2, cache=False).evaluate_batch(ctx, specs)
        assert serial == process

    def test_radius_variant_params_supported(self, ctx):
        # per_class / contaminated-centroid variants route through the
        # builder path and stay distinct from the fast path in the key.
        fast = _round_spec(DefenseSpec("radius", 0.15))
        variant = _round_spec(DefenseSpec("radius", 0.15,
                                          params={"per_class": True,
                                                  "centroid": "contaminated"}))
        assert fast.canonical() != variant.canonical()
        outs = EvaluationEngine("serial", cache=False).evaluate_batch(
            ctx, [fast, variant])
        assert outs[0].accuracy != outs[1].accuracy or \
            outs[0].n_removed != outs[1].n_removed

    def test_unknown_defense_kind_rejected(self, ctx):
        with pytest.raises(ValueError, match="unknown defense kind"):
            materialize_defense(ctx, DefenseSpec("fortress", 0.1))


class TestRoundSpecCanonicalisation:
    def test_filter_percentile_is_radius_sugar(self):
        sugar = RoundSpec(filter_percentile=0.1, seed=3)
        explicit = RoundSpec(defense=DefenseSpec("radius", 0.1), seed=3)
        assert sugar == explicit
        assert sugar.canonical() == explicit.canonical()
        assert explicit.filter_percentile == 0.1  # mirrored back

    def test_zero_radius_is_no_defense(self):
        assert RoundSpec(defense=DefenseSpec("radius", 0.0), seed=3) == \
            RoundSpec(seed=3)

    def test_both_spellings_rejected(self):
        with pytest.raises(ValueError, match="not both"):
            RoundSpec(filter_percentile=0.1,
                      defense=DefenseSpec("slab_filter", 0.1))

    def test_defense_moves_the_key(self):
        a = RoundSpec(defense=DefenseSpec("slab_filter", 0.1), seed=3)
        b = RoundSpec(defense=DefenseSpec("loss_filter", 0.1), seed=3)
        c = RoundSpec(defense=DefenseSpec("slab_filter", 0.2), seed=3)
        assert len({a.canonical(), b.canonical(), c.canonical()}) == 3

    def test_victim_moves_the_key(self):
        a = RoundSpec(filter_percentile=0.1, seed=3)
        b = RoundSpec(filter_percentile=0.1, victim=VictimSpec("logistic"), seed=3)
        c = RoundSpec(filter_percentile=0.1,
                      victim=VictimSpec("logistic", params={"reg": 0.5}), seed=3)
        assert len({a.canonical(), b.canonical(), c.canonical()}) == 3

    def test_clean_rounds_still_share_poison_fractions(self):
        a = RoundSpec(defense=DefenseSpec("slab_filter", 0.1), attack=None,
                      poison_fraction=0.2, seed=3)
        b = RoundSpec(defense=DefenseSpec("slab_filter", 0.1), attack=None,
                      poison_fraction=0.3, seed=3)
        assert a.canonical() == b.canonical()

    def test_bad_types_rejected(self):
        with pytest.raises(TypeError, match="DefenseSpec"):
            RoundSpec(defense="slab_filter")
        with pytest.raises(TypeError, match="VictimSpec"):
            RoundSpec(victim="svm")


class TestVictimSpecParity:
    @pytest.mark.parametrize("kind", ["svm", "logistic", "perceptron",
                                      "ridge", "naive_bayes"])
    def test_spec_matches_direct_factory(self, ctx, kind):
        spec = RoundSpec(filter_percentile=0.1,
                         attack=AttackSpec("boundary", 0.05),
                         victim=VictimSpec(kind), seed=SEED)
        engine_out = EvaluationEngine("serial", cache=False).evaluate(ctx, spec)
        direct = evaluate_configuration(
            ctx, filter_percentile=0.1, attack=ctx.boundary_attack(0.05),
            poison_fraction=0.2, seed=SEED,
            victim_factory=VictimFactory(kind),
        )
        assert engine_out == direct

    def test_params_reach_the_estimator(self, ctx):
        factory = materialize_victim(ctx, VictimSpec("svm", params={"epochs": 7}))
        assert factory(0).epochs == 7

    def test_factories_pickle(self):
        import pickle

        f = VictimFactory("logistic", params={"reg": 0.5})
        assert pickle.loads(pickle.dumps(f)) == f

    def test_process_backend_parity(self, ctx):
        specs = [RoundSpec(filter_percentile=0.1,
                           attack=AttackSpec("boundary", 0.05),
                           victim=VictimSpec(kind), seed=SEED)
                 for kind in ("logistic", "perceptron", "naive_bayes")]
        serial = EvaluationEngine("serial", cache=False).evaluate_batch(ctx, specs)
        process = EvaluationEngine("process", jobs=2, cache=False).evaluate_batch(ctx, specs)
        assert serial == process

    def test_unknown_victim_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown victim kind"):
            VictimFactory("oracle")


class TestNewAttackKinds:
    """The remaining attack families are engine-runnable and distinct."""

    CASES = [
        AttackSpec("targeted", 0.05),
        AttackSpec("random-noise", 0.05),
        AttackSpec("furthest-point", 0.1),
        AttackSpec("mixed", params={"percentiles": (0.02, 0.1)}),
        AttackSpec("bilevel", 0.05, params={"n_outer": 2}),
    ]

    def test_all_run_and_differ_from_boundary(self, ctx):
        engine = EvaluationEngine("serial", cache=False)
        base = engine.evaluate(ctx, RoundSpec(
            filter_percentile=0.1, attack=AttackSpec("boundary", 0.05), seed=SEED))
        for aspec in self.CASES:
            out = engine.evaluate(ctx, RoundSpec(
                filter_percentile=0.1, attack=aspec, seed=SEED))
            assert out.n_poison == base.n_poison
            assert 0.0 <= out.accuracy <= 1.0

    def test_process_backend_parity(self, ctx):
        specs = [RoundSpec(filter_percentile=0.1, attack=a, seed=SEED)
                 for a in self.CASES]
        serial = EvaluationEngine("serial", cache=False).evaluate_batch(ctx, specs)
        process = EvaluationEngine("process", jobs=2, cache=False).evaluate_batch(ctx, specs)
        assert serial == process

    def test_kinds_move_the_key(self):
        keys = {RoundSpec(filter_percentile=0.1, attack=a, seed=SEED).canonical()
                for a in self.CASES}
        assert len(keys) == len(self.CASES)

    def test_spec_matches_direct_attack_objects(self, ctx):
        """Spec-driven rounds == rounds with literally-built attacks."""
        from repro.attacks import RandomNoiseAttack, TargetedClassAttack

        cases = [
            (AttackSpec("targeted", 0.05, params={"victim_label": -1}),
             TargetedClassAttack(victim_label=-1, target_percentile=0.05,
                                 centroid_method=ctx.centroid_method)),
            (AttackSpec("random-noise", 0.05, params={"fill": True}),
             RandomNoiseAttack(target_percentile=0.05, fill=True,
                               centroid_method=ctx.centroid_method)),
        ]
        engine = EvaluationEngine("serial", cache=False)
        for aspec, attack in cases:
            spec_out = engine.evaluate(ctx, RoundSpec(
                filter_percentile=0.1, attack=aspec, seed=SEED))
            direct = evaluate_configuration(
                ctx, filter_percentile=0.1, attack=attack,
                poison_fraction=0.2, seed=SEED)
            assert spec_out == direct


class TestCrossFamilyGame:
    DEFENSES = [
        DefenseSpec("radius", 0.1),
        DefenseSpec("slab_filter", 0.1),
        DefenseSpec("loss_filter", 0.1, params={"n_rounds": 1}),
    ]
    ATTACKS = [
        AttackSpec("boundary", 0.05),
        AttackSpec("label-flip"),
        None,  # clean baseline column
    ]

    def test_game_runs_and_solves(self, ctx):
        from repro.experiments.empirical_game import solve_cross_family_game

        result = solve_cross_family_game(
            ctx, self.DEFENSES, self.ATTACKS, n_repeats=1,
            engine=EvaluationEngine("serial", cache=False),
        )
        matrix = np.asarray(result.accuracy_matrix)
        assert matrix.shape == (3, 3)
        assert np.all((matrix >= 0.0) & (matrix <= 1.0))
        assert result.mixed_advantage >= -1e-9
        assert abs(sum(result.defender_mix) - 1.0) < 1e-6
        assert len({result.best_pure_defense} | set(result.defense_labels)) == 3

    def test_serial_process_identical(self, ctx):
        from repro.experiments.empirical_game import build_cross_family_game

        serial = build_cross_family_game(
            ctx, self.DEFENSES, self.ATTACKS,
            engine=EvaluationEngine("serial", cache=False))
        process = build_cross_family_game(
            ctx, self.DEFENSES, self.ATTACKS,
            engine=EvaluationEngine("process", jobs=2, cache=False))
        assert np.array_equal(serial, process)

    def test_bad_inputs_rejected(self, ctx):
        from repro.experiments.empirical_game import build_cross_family_game

        with pytest.raises(ValueError, match="non-empty"):
            build_cross_family_game(ctx, [], self.ATTACKS)
        with pytest.raises(TypeError, match="DefenseSpec"):
            build_cross_family_game(ctx, ["radius"], self.ATTACKS)
