"""EvaluationEngine: backend parity, caching, batching, configuration."""

import numpy as np
import pytest

from repro.engine import (
    AttackSpec,
    EvaluationEngine,
    ProcessPoolBackend,
    RoundSpec,
    SerialBackend,
    default_engine,
    engine_from_env,
    make_backend,
    materialize_attack,
    resolve_engine,
    set_default_engine,
)
from repro.experiments.payoff_sweep import (
    evaluate_mixed_defense,
    run_pure_strategy_sweep,
)
from repro.experiments.runner import make_synthetic_context
from repro.ml.ridge import RidgeClassifier


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=1, n_samples=120, n_features=3)


def batch(n_percentiles=3, n_seeds=1):
    specs = []
    for i, p in enumerate(np.linspace(0.0, 0.3, n_percentiles)):
        for s in range(n_seeds):
            specs.append(RoundSpec(filter_percentile=float(p), attack=None,
                                   seed=100 + s))
            specs.append(RoundSpec(filter_percentile=float(p),
                                   attack=AttackSpec("boundary", float(p)),
                                   poison_fraction=0.2, seed=100 + s))
    return specs


class TestBackendParity:
    """The engine's core guarantee: identical outcomes on every backend."""

    def test_process_pool_matches_serial(self, ctx):
        specs = batch(n_percentiles=3, n_seeds=2)
        serial = EvaluationEngine("serial", cache=False)
        parallel = EvaluationEngine("process", jobs=2, cache=False)
        assert serial.evaluate_batch(ctx, specs) == \
            parallel.evaluate_batch(ctx, specs)

    def test_cached_and_uncached_identical(self, ctx):
        specs = batch()
        assert EvaluationEngine(cache=False).evaluate_batch(ctx, specs) == \
            EvaluationEngine(cache=True).evaluate_batch(ctx, specs)

    def test_unpicklable_context_fails_clearly(self):
        bad_ctx = make_synthetic_context(
            seed=3, n_samples=80, n_features=3,
            model_factory=lambda seed: RidgeClassifier(reg=1e-2),
        )
        engine = EvaluationEngine("process", jobs=2, cache=False)
        with pytest.raises(TypeError, match="pickled"):
            engine.evaluate_batch(bad_ctx, batch(n_percentiles=1))


class TestCaching:
    def test_repeat_batch_is_served_from_cache(self, ctx):
        engine = EvaluationEngine("serial")
        specs = batch()
        first = engine.evaluate_batch(ctx, specs)
        computed = engine.rounds_computed
        second = engine.evaluate_batch(ctx, specs)
        assert first == second
        assert engine.rounds_computed == computed  # nothing recomputed
        assert engine.cache.stats.hits == len(specs)

    def test_in_batch_duplicates_computed_once(self, ctx):
        engine = EvaluationEngine("serial", cache=False)
        spec = RoundSpec(filter_percentile=0.1, attack=None, seed=9)
        outcomes = engine.evaluate_batch(ctx, [spec, spec, spec])
        assert engine.rounds_computed == 1
        assert outcomes[0] == outcomes[1] == outcomes[2]

    def test_cache_off_recomputes(self, ctx):
        engine = EvaluationEngine("serial", cache=False)
        spec = RoundSpec(filter_percentile=0.1, attack=None, seed=9)
        engine.evaluate(ctx, spec)
        engine.evaluate(ctx, spec)
        assert engine.rounds_computed == 2

    def test_disk_cache_survives_engine_restart(self, ctx, tmp_path):
        spec = RoundSpec(filter_percentile=0.1, attack=None, seed=9)
        first = EvaluationEngine("serial", cache_dir=tmp_path / "cache")
        out1 = first.evaluate(ctx, spec)
        second = EvaluationEngine("serial", cache_dir=tmp_path / "cache")
        out2 = second.evaluate(ctx, spec)
        assert out1 == out2
        assert second.rounds_computed == 0


class TestDriverCacheReuse:
    """Locks in the clean-baseline dedup across experiment drivers."""

    PERCENTILES = np.array([0.0, 0.1, 0.3])

    def test_sweep_rerun_is_fully_cached(self, ctx):
        engine = EvaluationEngine("serial")
        kwargs = dict(percentiles=self.PERCENTILES, poison_fraction=0.2,
                      n_repeats=2, engine=engine)
        first = run_pure_strategy_sweep(ctx, **kwargs)
        computed = engine.rounds_computed
        assert computed == 2 * 2 * self.PERCENTILES.size  # clean + attacked
        second = run_pure_strategy_sweep(ctx, **kwargs)
        assert engine.rounds_computed == computed
        assert engine.cache.stats.hits == computed
        assert second.acc_clean == first.acc_clean
        assert second.acc_attacked == first.acc_attacked

    def test_clean_baselines_shared_across_poison_fractions(self, ctx):
        engine = EvaluationEngine("serial")
        run_pure_strategy_sweep(ctx, percentiles=self.PERCENTILES,
                                poison_fraction=0.2, n_repeats=2, engine=engine)
        hits_before = engine.cache.stats.hits
        sweep = run_pure_strategy_sweep(ctx, percentiles=self.PERCENTILES,
                                        poison_fraction=0.3, n_repeats=2,
                                        engine=engine)
        # Every clean cell (percentile x repeat) is identical work at any
        # contamination rate and must be a cache hit; only the attacked
        # cells are new.
        n_clean_cells = 2 * self.PERCENTILES.size
        assert engine.cache.stats.hits - hits_before == n_clean_cells
        assert sweep.poison_fraction == 0.3

    def test_mixed_defense_rerun_is_fully_cached(self, ctx):
        from repro.core.mixed_strategy import MixedDefense

        defense = MixedDefense(percentiles=np.array([0.05, 0.2]),
                               probabilities=np.array([0.6, 0.4]))
        engine = EvaluationEngine("serial")
        first = evaluate_mixed_defense(ctx, defense, n_repeats=1, engine=engine)
        computed = engine.rounds_computed
        second = evaluate_mixed_defense(ctx, defense, n_repeats=1, engine=engine)
        assert engine.rounds_computed == computed
        assert np.array_equal(first[2], second[2])


class TestLabelFlipSpec:
    """label-flip is a batchable engine attack kind."""

    def test_engine_round_matches_direct_evaluation(self, ctx):
        from repro.attacks.label_flip import LabelFlipAttack
        from repro.experiments.runner import evaluate_configuration

        spec = RoundSpec(filter_percentile=0.1,
                         attack=AttackSpec("label-flip",
                                           params={"strategy": "near_boundary"}),
                         poison_fraction=0.2, seed=21)
        engine_out = EvaluationEngine("serial", cache=False).evaluate(ctx, spec)
        direct = evaluate_configuration(
            ctx, filter_percentile=0.1,
            attack=LabelFlipAttack(strategy="near_boundary"),
            poison_fraction=0.2, seed=21,
        )
        assert engine_out == direct

    def test_default_strategy_is_random(self, ctx):
        attack = materialize_attack(ctx, AttackSpec("label-flip"))
        assert attack.strategy == "random"

    def test_backend_parity(self, ctx):
        specs = [RoundSpec(filter_percentile=0.05,
                           attack=AttackSpec("label-flip", params={"strategy": s}),
                           poison_fraction=0.2, seed=31)
                 for s in ("random", "far_from_own_class", "near_boundary")]
        serial = EvaluationEngine("serial", cache=False).evaluate_batch(ctx, specs)
        process = EvaluationEngine("process", jobs=2, cache=False).evaluate_batch(ctx, specs)
        assert serial == process

    def test_mixed_family_batch(self, ctx):
        """Sweeps over attack families run through one engine batch."""
        specs = [
            RoundSpec(filter_percentile=0.1,
                      attack=AttackSpec("boundary", 0.05), seed=41),
            RoundSpec(filter_percentile=0.1,
                      attack=AttackSpec("label-flip"), seed=41),
        ]
        outcomes = EvaluationEngine("serial", cache=False).evaluate_batch(ctx, specs)
        assert len(outcomes) == 2
        assert outcomes[0] != outcomes[1]  # distinct attacks, distinct results


class TestConfiguration:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("quantum")

    def test_backend_instances_pass_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend

    def test_engine_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        monkeypatch.setenv("REPRO_JOBS", "3")
        monkeypatch.setenv("REPRO_CACHE", "0")
        engine = engine_from_env()
        assert isinstance(engine.backend, ProcessPoolBackend)
        assert engine.backend.jobs == 3
        assert engine.cache is None

    def test_default_engine_resolution(self):
        previous = default_engine()
        try:
            override = EvaluationEngine("serial", cache=False)
            set_default_engine(override)
            assert resolve_engine(None) is override
            explicit = EvaluationEngine("serial")
            assert resolve_engine(explicit) is explicit
        finally:
            set_default_engine(previous)

    def test_unknown_attack_kind_rejected(self, ctx):
        with pytest.raises(ValueError, match="unknown attack kind"):
            materialize_attack(ctx, AttackSpec("warp", 0.1))

    def test_bad_jobs_rejected(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(jobs=0)
