"""execute_rounds: the batch-aware sibling of execute_round.

PR 6 contract: grouping same-victim, same-shape rounds through
``LinearSVM.fit_many`` is an execution strategy — outcomes must be
bit-identical to per-spec ``execute_round`` calls, in input order,
with and without the ``REPRO_BATCH_FITS`` toggle.
"""

import pytest

from repro.engine import (
    AttackSpec,
    DefenseSpec,
    RoundSpec,
    VictimSpec,
    execute_round,
    execute_rounds,
)
from repro.engine import backends as backends_mod
from repro.experiments.runner import make_synthetic_context
from repro.ml.linear_svm import LinearSVM


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=2, n_samples=140, n_features=3)


def mixed_specs(n_seeds=3):
    """Clean + attacked + slow-defense + foreign-victim rounds: every
    dispatch arm of execute_round, with groupable repeats inside."""
    specs = []
    for seed in range(n_seeds):
        specs.append(RoundSpec(filter_percentile=0.1, attack=None, seed=seed))
        specs.append(RoundSpec(filter_percentile=0.1,
                               attack=AttackSpec("boundary", 0.05),
                               poison_fraction=0.2, seed=seed))
    specs.append(RoundSpec(attack=AttackSpec("boundary", 0.05),
                           poison_fraction=0.2, seed=0,
                           defense=DefenseSpec("slab_filter", 0.1)))
    specs.append(RoundSpec(filter_percentile=0.1, attack=None, seed=0,
                           victim=VictimSpec("ridge", (("reg", 0.01),))))
    return specs


class TestBitIdentity:
    def test_matches_per_round_execution(self, ctx):
        specs = mixed_specs()
        batched = execute_rounds(ctx, specs)
        reference = [execute_round(ctx, spec) for spec in specs]
        assert batched == reference

    def test_toggle_off_matches(self, ctx, monkeypatch):
        specs = mixed_specs(n_seeds=2)
        expected = execute_rounds(ctx, specs)
        monkeypatch.setenv("REPRO_BATCH_FITS", "0")
        assert execute_rounds(ctx, specs) == expected

    def test_windowing_preserves_order(self, ctx, monkeypatch):
        # Tiny windows force multiple prepare/fit/finish cycles.
        monkeypatch.setattr(backends_mod, "_FIT_WINDOW", 3)
        specs = mixed_specs(n_seeds=4)
        assert execute_rounds(ctx, specs) == \
            [execute_round(ctx, spec) for spec in specs]

    def test_single_spec_short_circuits(self, ctx):
        spec = RoundSpec(filter_percentile=0.1, attack=None, seed=5)
        assert execute_rounds(ctx, [spec]) == [execute_round(ctx, spec)]
        assert execute_rounds(ctx, []) == []


class TestBatchedDispatch:
    def test_fit_many_engages_for_repeat_rounds(self, ctx, monkeypatch):
        calls = []
        original = LinearSVM.fit_many.__func__

        def counting_fit_many(cls, models, datasets):
            calls.append(len(models))
            return original(cls, models, datasets)

        monkeypatch.setattr(LinearSVM, "fit_many",
                            classmethod(counting_fit_many))
        specs = [RoundSpec(filter_percentile=0.1, attack=None, seed=s)
                 for s in range(4)]
        execute_rounds(ctx, specs)
        # The repeat axis (same percentile, different seeds) yields
        # same-shape training sets -> one batched fit of all four.
        assert calls == [4]

    def test_toggle_off_disables_dispatch(self, ctx, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_FITS", "0")
        monkeypatch.setattr(
            LinearSVM, "fit_many",
            classmethod(lambda cls, models, datasets: pytest.fail(
                "fit_many dispatched with REPRO_BATCH_FITS=0")))
        specs = [RoundSpec(filter_percentile=0.1, attack=None, seed=s)
                 for s in range(3)]
        execute_rounds(ctx, specs)
