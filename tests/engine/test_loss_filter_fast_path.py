"""Loss-filter surrogate-reuse fast path: bit-identity vs the trim loop.

PR 8 satellite: ``LossFilter.kernel_mask`` memoises the clean-data trim
mask on the :class:`~repro.experiments.kernel.ContextKernel` behind a
one-time replay probe (``ContextKernel.reuse_mask``), so a sweep's
repeated clean rounds stop refitting the provisional ridge model.
Every assertion here is exact — the fast path is an optimisation,
never an approximation.
"""

import numpy as np
import pytest

from repro.attacks.base import poison_dataset
from repro.defenses import loss_filter as loss_filter_mod
from repro.defenses.loss_filter import LossFilter
from repro.engine import AttackSpec, DefenseSpec, RoundSpec
from repro.engine.backends import execute_round
from repro.experiments.runner import evaluate_configuration, \
    make_synthetic_context
from repro.ml.linear_svm import LinearSVM
from repro.utils.rng import as_generator, derive_seed


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=6, n_samples=260, n_features=5)


def _mixed(ctx, percentile=0.1, fraction=0.2, seed=11):
    from repro.engine.spec import materialize_attack

    attack = materialize_attack(ctx, AttackSpec("boundary", percentile))
    rng = as_generator(derive_seed(seed, "round"))
    return poison_dataset(ctx.X_train, ctx.y_train, attack,
                          fraction=fraction, seed=rng, return_sources=True)


class TestKernelMask:
    def test_clean_mask_matches_trim_loop(self, ctx):
        defense = LossFilter(remove_fraction=0.1)
        reference = defense.mask(ctx.X_train, ctx.y_train)
        # First call computes, second replays the probe, third serves
        # the memo — all three must be the reference bits.
        for _ in range(3):
            fast = defense.kernel_mask(ctx.kernel(), ctx.X_train,
                                       ctx.y_train, None, None)
            assert fast is not None
            np.testing.assert_array_equal(fast, reference)

    def test_memo_serves_without_refitting(self, ctx, monkeypatch):
        defense = LossFilter(remove_fraction=0.15)
        reference = defense.mask(ctx.X_train, ctx.y_train)
        args = (ctx.kernel(), ctx.X_train, ctx.y_train, None, None)
        defense.kernel_mask(*args)  # compute
        defense.kernel_mask(*args)  # replay probe
        fits = []
        monkeypatch.setattr(
            loss_filter_mod, "clone_estimator",
            lambda learner: fits.append(1) or type(learner)())
        served = defense.kernel_mask(*args)
        assert fits == []  # verified memo: zero provisional fits
        np.testing.assert_array_equal(served, reference)

    def test_poisoned_round_falls_back(self, ctx):
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        defense = LossFilter(remove_fraction=0.1)
        assert defense.kernel_mask(ctx.kernel(), X_mix, y_mix,
                                   is_poison, sources) is None

    def test_foreign_matrix_falls_back(self, ctx):
        defense = LossFilter(remove_fraction=0.1)
        assert defense.kernel_mask(ctx.kernel(), ctx.X_train.copy(),
                                   ctx.y_train, None, None) is None

    def test_non_ridge_learner_falls_back(self, ctx):
        defense = LossFilter(remove_fraction=0.1,
                             learner=LinearSVM(epochs=2, seed=0))
        assert defense.kernel_mask(ctx.kernel(), ctx.X_train,
                                   ctx.y_train, None, None) is None

    def test_failed_probe_disables_reuse(self, ctx):
        kernel = ctx.kernel()
        calls = []

        def flaky():
            calls.append(1)
            mask = np.ones(8, dtype=bool)
            mask[len(calls) % 2] = False  # differs between calls
            return mask

        key = ("test-flaky",)
        first = kernel.reuse_mask(key, flaky)
        second = kernel.reuse_mask(key, flaky)
        # The replay probe disagreed: serve the fresh truth, never the
        # stale memo, and recompute on every later call.
        assert not np.array_equal(first, second)
        kernel.reuse_mask(key, flaky)
        assert len(calls) == 3  # permanent sequential fallback


class TestSpecPath:
    def test_clean_round_matches_kernel_free_reference(self, ctx):
        """An engine loss-filter round on clean data (memo engaged)
        equals the same round with the kernel switched off."""
        from repro.engine.spec import materialize_defense

        spec = RoundSpec(defense=DefenseSpec("loss_filter", 0.1), seed=17)
        fast = execute_round(ctx, spec)
        reference = evaluate_configuration(
            ctx,
            defense=materialize_defense(ctx, spec.defense,
                                        seed=derive_seed(17, "defense")),
            seed=17, use_kernel=False)
        assert fast == reference

    def test_poisoned_round_matches_kernel_free_reference(self, ctx):
        from repro.engine.spec import materialize_attack, materialize_defense

        spec = RoundSpec(defense=DefenseSpec("loss_filter", 0.1),
                         attack=AttackSpec("boundary", 0.1),
                         poison_fraction=0.2, seed=17)
        fast = execute_round(ctx, spec)
        reference = evaluate_configuration(
            ctx,
            attack=materialize_attack(ctx, spec.attack),
            defense=materialize_defense(ctx, spec.defense,
                                        seed=derive_seed(17, "defense")),
            poison_fraction=0.2, seed=17, use_kernel=False)
        assert fast == reference
