"""Disk-cache manifest, schema pruning, and engine batch telemetry."""

import json
import os

import pytest

from repro.engine import (
    AttackSpec,
    EvaluationEngine,
    ResultCache,
    RoundSpec,
    prune_cache_dir,
    read_manifest,
    write_manifest,
)
from repro.engine.cache import _SCHEMA_VERSION
from repro.experiments.runner import make_synthetic_context


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=1, n_samples=100, n_features=3)


def _outcome():
    from repro.experiments.runner import EvaluationOutcome

    return EvaluationOutcome(accuracy=0.9, n_poison=10, n_removed=5,
                             filter_percentile=0.1, filter_radius=2.0,
                             report=None)


class TestManifest:
    def test_written_on_store(self, tmp_path):
        store = tmp_path / "cache"
        cache = ResultCache(disk_dir=store)
        cache.put("aaaa", _outcome())
        cache.put("bbbb", _outcome())
        manifest = read_manifest(store)
        assert manifest is not None
        assert manifest["schema_version"] == _SCHEMA_VERSION
        assert manifest["entry_count"] == 2
        assert manifest["total_bytes"] > 0

    def test_manifest_excluded_from_its_own_count(self, tmp_path):
        store = tmp_path / "cache"
        ResultCache(disk_dir=store).put("aaaa", _outcome())
        first = read_manifest(store)
        assert write_manifest(store)["entry_count"] == first["entry_count"] == 1

    def test_read_missing_returns_none(self, tmp_path):
        assert read_manifest(tmp_path) is None


class TestPrune:
    def _stale_entry(self, store, name, version):
        os.makedirs(store, exist_ok=True)
        with open(os.path.join(store, f"{name}.json"), "w") as fh:
            json.dump({"schema_version": version, "accuracy": 0.5}, fh)

    def test_drops_old_schema_versions_only(self, tmp_path):
        store = tmp_path / "cache"
        cache = ResultCache(disk_dir=store)
        cache.put("fresh", _outcome())
        self._stale_entry(store, "stale1", _SCHEMA_VERSION - 1)
        self._stale_entry(store, "stale2", 1)
        summary = prune_cache_dir(store)
        assert summary["removed"] == 2
        assert summary["entry_count"] == 1
        assert os.path.exists(store / "fresh.json")
        assert not os.path.exists(store / "stale1.json")

    def test_corrupt_entries_pruned(self, tmp_path):
        store = tmp_path / "cache"
        store.mkdir()
        (store / "bad.json").write_text("{not json")
        summary = prune_cache_dir(store)
        assert summary["removed"] == 1
        assert summary["entry_count"] == 0

    def test_cli_prune_and_info(self, tmp_path, capsys):
        from repro.experiments.cli import main

        store = tmp_path / "cache"
        ResultCache(disk_dir=store).put("fresh", _outcome())
        self._stale_entry(store, "old", 1)
        assert main(["repro-cache", "info", "--cache-dir", str(store)]) == 0
        assert "entries:        2" in capsys.readouterr().out
        assert main(["repro-cache", "prune", "--cache-dir", str(store)]) == 0
        assert "pruned 1 stale entries" in capsys.readouterr().out
        assert read_manifest(store)["entry_count"] == 1

    def test_cli_rejects_missing_dir(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="no such cache directory"):
            main(["repro-cache", "prune", "--cache-dir",
                  str(tmp_path / "nope")])


class TestBatchTelemetry:
    def specs(self):
        return [RoundSpec(filter_percentile=0.1, attack=None, seed=5),
                RoundSpec(filter_percentile=0.1,
                          attack=AttackSpec("boundary", 0.1), seed=5)]

    def test_batch_log_records_backend_and_wall_time(self, ctx):
        engine = EvaluationEngine("serial")
        engine.evaluate_batch(ctx, self.specs())
        engine.evaluate_batch(ctx, self.specs())  # all cache hits
        assert len(engine.batch_log) == 2
        first, second = engine.batch_log
        assert first["backend"] == "serial"
        assert first["computed"] == 2 and first["cache_hits"] == 0
        assert second["computed"] == 0 and second["cache_hits"] == 2
        assert first["seconds"] > 0.0 and second["seconds"] >= 0.0

    def test_stats_include_evictions_and_batches(self, ctx):
        engine = EvaluationEngine("serial", cache_max_entries=1)
        engine.evaluate_batch(ctx, self.specs())
        stats = engine.stats
        assert stats["batches_run"] == 1
        assert stats["cache_evictions"] == 1  # cap 1, two stores
        assert stats["batch_seconds"] > 0.0

    def test_format_engine_stats_renders_both_tables(self, ctx):
        from repro.experiments.reporting import format_engine_stats

        engine = EvaluationEngine("serial")
        engine.evaluate_batch(ctx, self.specs())
        text = format_engine_stats(engine)
        assert "Engine stats" in text
        assert "cache hits" in text
        assert "cache evictions" in text
        assert "backend" in text and "serial" in text
        assert "ms" in text  # the per-batch wall-time column

    def test_format_engine_stats_cache_off(self, ctx):
        from repro.experiments.reporting import format_engine_stats

        engine = EvaluationEngine("serial", cache=False)
        engine.evaluate_batch(ctx, self.specs())
        assert "cache" in format_engine_stats(engine)
