"""RONI stacked-ridge fast path: bit-identity vs the sequential loop.

PR 6 satellite: ``RONIDefense.kernel_mask`` replaces the one-retrain-
per-candidate loop with probe-verified stacked closed-form ridge solves
(:mod:`repro.ml.batched`).  Every assertion here is exact — the fast
path is an optimisation, never an approximation.
"""

import numpy as np
import pytest

from repro.attacks.base import poison_dataset
from repro.defenses.roni import RONIDefense
from repro.engine import AttackSpec, DefenseSpec, RoundSpec
from repro.engine.backends import execute_round
from repro.experiments.runner import evaluate_configuration, \
    make_synthetic_context
from repro.ml import batched
from repro.ml.linear_svm import LinearSVM
from repro.utils.rng import as_generator, derive_seed


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=6, n_samples=260, n_features=5)


def _mixed(ctx, percentile=0.1, fraction=0.2, seed=11):
    from repro.engine.spec import materialize_attack

    attack = materialize_attack(ctx, AttackSpec("boundary", percentile))
    rng = as_generator(derive_seed(seed, "round"))
    return poison_dataset(ctx.X_train, ctx.y_train, attack,
                          fraction=fraction, seed=rng, return_sources=True)


class TestKernelMask:
    @pytest.mark.parametrize("tolerance", [0.0, 0.01])
    def test_mask_matches_sequential_loop(self, ctx, tolerance):
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        defense = RONIDefense(tolerance=tolerance, seed=3)
        fast = defense.kernel_mask(ctx.kernel(), X_mix, y_mix,
                                   is_poison, sources)
        assert fast is not None
        np.testing.assert_array_equal(fast, defense.mask(X_mix, y_mix))

    def test_clean_data_matches_too(self, ctx):
        defense = RONIDefense(seed=0)
        fast = defense.kernel_mask(ctx.kernel(), ctx.X_train, ctx.y_train,
                                   None, None)
        np.testing.assert_array_equal(
            fast, defense.mask(ctx.X_train, ctx.y_train))

    def test_non_ridge_learner_falls_back(self, ctx):
        defense = RONIDefense(learner=LinearSVM(epochs=2, seed=0))
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        assert defense.kernel_mask(ctx.kernel(), X_mix, y_mix,
                                   is_poison, sources) is None

    def test_failed_probe_falls_back(self, ctx, monkeypatch):
        monkeypatch.setattr(batched, "_probe_ridge", lambda *a: False)
        monkeypatch.setattr(batched, "_ridge_probe_cache", {})
        defense = RONIDefense(seed=3)
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        assert defense.kernel_mask(ctx.kernel(), X_mix, y_mix,
                                   is_poison, sources) is None

    def test_chunking_does_not_change_bits(self, ctx, monkeypatch):
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        defense = RONIDefense(seed=5)
        reference = defense.kernel_mask(ctx.kernel(), X_mix, y_mix,
                                        is_poison, sources)
        from repro.defenses import roni as roni_mod

        monkeypatch.setattr(roni_mod, "_FAST_CHUNK", 7)
        np.testing.assert_array_equal(
            defense.kernel_mask(ctx.kernel(), X_mix, y_mix,
                                is_poison, sources),
            reference)


class TestSpecPath:
    def test_round_matches_kernel_free_reference(self, ctx):
        """An engine RONI round (fast path engaged) equals the same
        round with the kernel switched off (sequential mask path)."""
        from repro.engine.spec import materialize_attack, materialize_defense

        spec = RoundSpec(defense=DefenseSpec("roni"),
                         attack=AttackSpec("boundary", 0.1),
                         poison_fraction=0.2, seed=17)
        fast = execute_round(ctx, spec)
        reference = evaluate_configuration(
            ctx,
            attack=materialize_attack(ctx, spec.attack),
            defense=materialize_defense(ctx, spec.defense,
                                        seed=derive_seed(17, "defense")),
            poison_fraction=0.2, seed=17, use_kernel=False)
        assert fast == reference
