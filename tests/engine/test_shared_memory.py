"""Zero-copy context transport for the process backend.

The acceptance property: worker initialisation no longer pickles the
context's data arrays — the pickled metadata blob stays small and
constant-size while the arrays travel through shared memory.
"""

import gc
import pickle

import numpy as np
import pytest

from repro.engine import AttackSpec, EvaluationEngine, RoundSpec
from repro.engine.backends import _pack_context, _unpack_context
from repro.experiments.runner import make_synthetic_context


@pytest.fixture()
def big_ctx():
    return make_synthetic_context(seed=3, n_samples=4000, n_features=16)


def pack(ctx):
    meta, shm = _pack_context(ctx)
    blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
    return meta, shm, blob


def close_after_views(shm):
    """Close an attached handle once all views of it have been dropped.

    Callers must let every rebuilt-context reference go out of scope
    first (the context<->kernel cycle needs a GC pass); numpy views
    pin the buffer and ``close`` raises ``BufferError`` otherwise.
    """
    gc.collect()
    shm.close()


class TestBlobSize:
    def test_shipped_blob_excludes_data_arrays(self, big_ctx):
        meta, shm, blob = pack(big_ctx)
        try:
            full = pickle.dumps(big_ctx, protocol=pickle.HIGHEST_PROTOCOL)
            data_bytes = big_ctx.X_train.nbytes + big_ctx.X_test.nbytes
            assert len(full) > data_bytes          # whole-context pickle is data-sized
            assert len(blob) < 4096                # metadata only
            assert len(blob) < len(full) / 50
        finally:
            shm.close()
            shm.unlink()

    def test_blob_size_constant_in_context_size(self):
        sizes = []
        for n in (400, 4000):
            ctx = make_synthetic_context(seed=3, n_samples=n, n_features=16)
            meta, shm, blob = pack(ctx)
            shm.close()
            shm.unlink()
            sizes.append(len(blob))
        assert abs(sizes[1] - sizes[0]) < 256  # only shm names/shapes differ


class TestRoundTrip:
    def test_context_reconstructs_exactly(self, big_ctx):
        meta, shm, blob = pack(big_ctx)

        def check():
            rebuilt, worker_shm = _unpack_context(pickle.loads(blob))
            for f in ("X_train", "y_train", "X_test", "y_test"):
                original = getattr(big_ctx, f)
                restored = getattr(rebuilt, f)
                np.testing.assert_array_equal(original, restored)
                assert not restored.flags.writeable
            np.testing.assert_array_equal(rebuilt.radius_map.distances,
                                          big_ctx.radius_map.distances)
            assert rebuilt.seed == big_ctx.seed
            assert rebuilt.dataset_name == big_ctx.dataset_name
            assert rebuilt.fingerprint() == big_ctx.fingerprint()
            return worker_shm

        try:
            close_after_views(check())
        finally:
            shm.close()
            shm.unlink()

    def test_prewarmed_direction_ships_in_blob(self, big_ctx):
        direction = big_ctx.kernel().direction  # force the surrogate fit
        meta, shm, blob = pack(big_ctx)

        def check():
            rebuilt, worker_shm = _unpack_context(pickle.loads(blob))
            kernel = rebuilt.__dict__.get("_kernel")
            assert kernel is not None
            assert kernel.direction_computed  # no refit needed in the worker
            np.testing.assert_array_equal(kernel.direction, direction)
            return worker_shm

        try:
            close_after_views(check())
        finally:
            shm.close()
            shm.unlink()

    def test_foreign_context_falls_back_to_pickle(self):
        class Opaque:
            pass

        meta, shm = _pack_context(Opaque())
        assert shm is None
        assert meta["mode"] == "pickle"


class TestEndToEnd:
    def test_process_rounds_work_on_shared_arrays(self, big_ctx):
        # Small spec batch on a big context: correctness of rounds whose
        # arrays are read-only shared-memory views.
        specs = [
            RoundSpec(filter_percentile=0.1,
                      attack=AttackSpec("boundary", 0.05),
                      poison_fraction=0.2, seed=s)
            for s in (1, 2)
        ]
        serial = EvaluationEngine("serial", cache=False).evaluate_batch(big_ctx, specs)
        process = EvaluationEngine("process", jobs=2, cache=False).evaluate_batch(big_ctx, specs)
        assert serial == process
