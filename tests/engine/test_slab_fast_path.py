"""Slab-filter kernel fast path: bit-identity vs the direct path.

ISSUE 4 satellite: per-class slab scores are cached on the
``ContextKernel`` so genuine rows are scored once per context.  Every
assertion here is exact (``==`` / ``array_equal``) — the fast path is
an optimisation, never an approximation.
"""

import numpy as np
import pytest

from repro.attacks.base import poison_dataset
from repro.defenses.slab_filter import SlabFilter
from repro.engine import (
    AttackSpec,
    DefenseSpec,
    EvaluationEngine,
    RoundSpec,
    round_key,
)
from repro.engine.backends import execute_round
from repro.engine.spec import materialize_attack, materialize_defense
from repro.experiments.runner import evaluate_configuration, \
    make_synthetic_context
from repro.utils.rng import as_generator, derive_seed


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=5, n_samples=260, n_features=5)


def _mixed(ctx, percentile=0.1, fraction=0.2, seed=9):
    attack = materialize_attack(ctx, AttackSpec("boundary", percentile))
    rng = as_generator(derive_seed(seed, "round"))
    return poison_dataset(ctx.X_train, ctx.y_train, attack,
                          fraction=fraction, seed=rng, return_sources=True)


class TestCachedScores:
    def test_clean_scores_match_fresh_filter(self, ctx):
        kernel = ctx.kernel()
        pair = kernel.class_centroids
        assert pair is not None
        fresh = SlabFilter(0.1, centroids=pair).slab_scores(
            ctx.X_train, ctx.y_train)
        assert np.array_equal(kernel.clean_slab_scores, fresh)

    def test_mixed_scores_reuse_is_bit_identical(self, ctx):
        kernel = ctx.kernel()
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        cached = kernel.slab_scores(X_mix, is_poison, sources)
        fresh = SlabFilter(0.1, centroids=kernel.class_centroids) \
            .slab_scores(X_mix, y_mix)
        assert np.array_equal(cached, fresh)

    def test_scores_computed_once_per_context(self, ctx):
        kernel = ctx.kernel()
        first = kernel.clean_slab_scores
        assert kernel.clean_slab_scores is first  # memoised, same array


class TestKernelMask:
    def test_mask_matches_direct_path(self, ctx):
        kernel = ctx.kernel()
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        pinned = SlabFilter(0.15, centroids=kernel.class_centroids)
        fast = pinned.kernel_mask(kernel, X_mix, y_mix, is_poison, sources)
        assert fast is not None
        assert np.array_equal(fast, pinned.mask(X_mix, y_mix))

    def test_foreign_centroids_fall_back(self, ctx):
        """A filter pinned to *copies* of the clean centroids must not
        claim the cached scores (identity check, like the attack
        kernel's ``describes``)."""
        kernel = ctx.kernel()
        pair = kernel.class_centroids
        copies = (np.array(pair[0], copy=True), np.array(pair[1], copy=True))
        filt = SlabFilter(0.15, centroids=copies)
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        assert filt.kernel_mask(kernel, X_mix, y_mix, is_poison,
                                sources) is None

    def test_data_estimated_filter_never_uses_kernel(self, ctx):
        filt = SlabFilter(0.15)
        X_mix, y_mix, is_poison, sources = _mixed(ctx)
        assert filt.kernel_mask(ctx.kernel(), X_mix, y_mix, is_poison,
                                sources) is None


class TestSpecPath:
    def test_axis_clean_round_matches_reference(self, ctx):
        """The engine's ``axis=clean`` slab round equals the same round
        evaluated with a pinned filter and the kernel switched off."""
        spec = RoundSpec(
            defense=DefenseSpec("slab_filter", 0.15, {"axis": "clean"}),
            attack=AttackSpec("boundary", 0.1),
            poison_fraction=0.2, seed=13)
        fast = execute_round(ctx, spec)
        pair = ctx.kernel().class_centroids
        reference = evaluate_configuration(
            ctx,
            attack=materialize_attack(ctx, spec.attack),
            defense=SlabFilter(0.15, centroids=(
                np.array(pair[0], copy=True), np.array(pair[1], copy=True))),
            poison_fraction=0.2, seed=13, use_kernel=False)
        assert fast == reference

    def test_axis_clean_materialises_pinned_filter(self, ctx):
        filt = materialize_defense(
            ctx, DefenseSpec("slab_filter", 0.1, {"axis": "clean"}))
        assert filt.centroids is not None
        assert filt.centroids[0] is ctx.kernel().class_centroids[0]
        plain = materialize_defense(ctx, DefenseSpec("slab_filter", 0.1))
        assert plain.centroids is None

    def test_bad_axis_param_rejected(self, ctx):
        with pytest.raises(ValueError, match="axis"):
            materialize_defense(
                ctx, DefenseSpec("slab_filter", 0.1, {"axis": "sideways"}))

    def test_axis_clean_refuses_foreign_centroid_method(self, ctx):
        """The clean axis is the kernel's geometry (the context's own
        centroid method); silently substituting it under a key claiming
        another method would poison the cache."""
        with pytest.raises(ValueError, match="centroid_method"):
            materialize_defense(
                ctx, DefenseSpec("slab_filter", 0.1,
                                 {"axis": "clean",
                                  "centroid_method": "mean"}))
        # spelling the context's own method explicitly is fine
        filt = materialize_defense(
            ctx, DefenseSpec("slab_filter", 0.1,
                             {"axis": "clean",
                              "centroid_method": ctx.centroid_method}))
        assert filt.centroids is not None

    def test_axis_clean_refuses_degenerate_geometry(self):
        """Single-class contexts cannot honour axis=clean; degrading to
        per-round contaminated centroids would silently change the
        defence's semantics under the clean-axis cache key."""
        import numpy as np

        from repro.experiments.runner import make_synthetic_context

        degenerate = make_synthetic_context(seed=7, n_samples=80,
                                            n_features=3)
        degenerate.y_train = np.zeros_like(degenerate.y_train)
        degenerate.__dict__.pop("_kernel", None)
        with pytest.raises(ValueError, match="degenerate"):
            materialize_defense(
                degenerate, DefenseSpec("slab_filter", 0.1,
                                        {"axis": "clean"}))

    def test_axis_clean_and_plain_have_distinct_cache_keys(self, ctx):
        fingerprint = ctx.fingerprint()
        plain = RoundSpec(defense=DefenseSpec("slab_filter", 0.1),
                          attack=AttackSpec("boundary", 0.1),
                          poison_fraction=0.2, seed=1)
        pinned = RoundSpec(
            defense=DefenseSpec("slab_filter", 0.1, {"axis": "clean"}),
            attack=AttackSpec("boundary", 0.1),
            poison_fraction=0.2, seed=1)
        assert round_key(fingerprint, plain) != round_key(fingerprint, pinned)

    def test_engine_parity_serial_vs_process(self, ctx):
        specs = [
            RoundSpec(defense=DefenseSpec("slab_filter", 0.15,
                                          {"axis": "clean"}),
                      attack=AttackSpec("boundary", p),
                      poison_fraction=0.2, seed=21 + i)
            for i, p in enumerate((0.0, 0.1, 0.2))
        ]
        serial = EvaluationEngine("serial", cache=False)
        process = EvaluationEngine("process", jobs=2, cache=False)
        assert serial.evaluate_batch(ctx, specs) == \
            process.evaluate_batch(ctx, specs)
