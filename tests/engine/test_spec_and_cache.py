"""Round specs, cache keys and the two-tier result cache."""

import numpy as np
import pytest

from repro.defenses.base import DefenseReport
from repro.engine import AttackSpec, ResultCache, RoundSpec, round_key
from repro.engine.cache import outcome_from_dict, outcome_to_dict
from repro.experiments.runner import EvaluationOutcome, make_synthetic_context


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=1, n_samples=120, n_features=3)


@pytest.fixture(scope="module")
def other_ctx():
    return make_synthetic_context(seed=2, n_samples=120, n_features=3)


def outcome(accuracy=0.9, with_report=True):
    report = DefenseReport(n_total=100, n_removed=10, poison_recall=0.5,
                          genuine_loss=0.05, precision=0.8) if with_report else None
    return EvaluationOutcome(accuracy=accuracy, n_poison=20, n_removed=10,
                             filter_percentile=0.1, filter_radius=2.5,
                             report=report)


class TestCanonicalisation:
    def test_zero_filter_equals_no_filter(self):
        a = RoundSpec(filter_percentile=0.0, attack=None, seed=7)
        b = RoundSpec(filter_percentile=None, attack=None, seed=7)
        assert a.canonical() == b.canonical()

    def test_clean_rounds_ignore_poison_fraction(self):
        a = RoundSpec(filter_percentile=0.1, attack=None,
                      poison_fraction=0.2, seed=7)
        b = RoundSpec(filter_percentile=0.1, attack=None,
                      poison_fraction=0.3, seed=7)
        assert a.canonical() == b.canonical()

    def test_attacked_rounds_keep_poison_fraction(self):
        attack = AttackSpec("boundary", 0.1)
        a = RoundSpec(filter_percentile=0.1, attack=attack,
                      poison_fraction=0.2, seed=7)
        b = RoundSpec(filter_percentile=0.1, attack=attack,
                      poison_fraction=0.3, seed=7)
        assert a.canonical() != b.canonical()

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ValueError):
            RoundSpec(filter_percentile=1.5)
        with pytest.raises(ValueError):
            AttackSpec("boundary", -0.1)


class TestRoundKey:
    """The key must move with everything a result depends on — and
    nothing else."""

    BASE = RoundSpec(filter_percentile=0.1, attack=AttackSpec("boundary", 0.05),
                     poison_fraction=0.2, seed=11)

    def test_deterministic(self, ctx):
        assert round_key(ctx.fingerprint(), self.BASE) == \
            round_key(ctx.fingerprint(), self.BASE)

    def test_sensitive_to_context(self, ctx, other_ctx):
        assert ctx.fingerprint() != other_ctx.fingerprint()
        assert round_key(ctx.fingerprint(), self.BASE) != \
            round_key(other_ctx.fingerprint(), self.BASE)

    @pytest.mark.parametrize("variant", [
        RoundSpec(filter_percentile=0.2, attack=AttackSpec("boundary", 0.05),
                  poison_fraction=0.2, seed=11),
        RoundSpec(filter_percentile=0.1, attack=AttackSpec("boundary", 0.06),
                  poison_fraction=0.2, seed=11),
        RoundSpec(filter_percentile=0.1, attack=AttackSpec("other", 0.05),
                  poison_fraction=0.2, seed=11),
        RoundSpec(filter_percentile=0.1, attack=None,
                  poison_fraction=0.2, seed=11),
        RoundSpec(filter_percentile=0.1, attack=AttackSpec("boundary", 0.05),
                  poison_fraction=0.25, seed=11),
        RoundSpec(filter_percentile=0.1, attack=AttackSpec("boundary", 0.05),
                  poison_fraction=0.2, seed=12),
    ])
    def test_sensitive_to_each_spec_field(self, ctx, variant):
        assert round_key(ctx.fingerprint(), self.BASE) != \
            round_key(ctx.fingerprint(), variant)

    def test_context_fingerprint_moves_with_data(self, ctx):
        import copy

        mutated = copy.copy(ctx)
        mutated.__dict__.pop("_fingerprint", None)
        mutated.X_train = ctx.X_train + 1e-9
        assert mutated.fingerprint() != ctx.fingerprint()

    def test_opaque_factories_never_share_fingerprints(self):
        # Two closures capturing different hyperparameters are
        # indistinguishable by signature, so the fingerprint must keep
        # their (otherwise identical) contexts apart rather than let
        # the cache serve one victim's results for the other.
        from repro.ml.ridge import RidgeClassifier

        a = make_synthetic_context(seed=5, n_samples=80, n_features=3,
                                   model_factory=lambda s: RidgeClassifier(reg=1e-2))
        b = make_synthetic_context(seed=5, n_samples=80, n_features=3,
                                   model_factory=lambda s: RidgeClassifier(reg=1.0))
        assert a.fingerprint() != b.fingerprint()
        assert a.fingerprint() == a.fingerprint()  # stable per instance


class TestOutcomeSerialisation:
    @pytest.mark.parametrize("with_report", [True, False])
    def test_round_trip(self, with_report):
        out = outcome(with_report=with_report)
        assert outcome_from_dict(outcome_to_dict(out)) == out

    def test_dict_is_jsonable(self):
        import json

        json.dumps(outcome_to_dict(outcome()))


class TestCanonicalParams:
    def test_params_mapping_and_pairs_equal(self):
        a = AttackSpec("label-flip", 0.0, params={"strategy": "near_boundary"})
        b = AttackSpec("label-flip", 0.0,
                       params=(("strategy", "near_boundary"),))
        assert a.canonical() == b.canonical()
        assert a == b

    def test_params_order_canonicalised(self):
        a = AttackSpec("x", 0.0, params={"b": 2, "a": 1})
        b = AttackSpec("x", 0.0, params={"a": 1, "b": 2})
        assert a.canonical() == b.canonical()

    def test_params_move_the_key(self, ctx):
        base = RoundSpec(attack=AttackSpec("label-flip"), seed=3)
        other = RoundSpec(attack=AttackSpec("label-flip",
                                            params={"strategy": "near_boundary"}),
                          seed=3)
        assert round_key(ctx.fingerprint(), base) != \
            round_key(ctx.fingerprint(), other)

    def test_unhashable_params_rejected(self):
        with pytest.raises(ValueError, match="params"):
            AttackSpec("x", 0.0, params={"bad": [1, 2]})


class TestLRUCap:
    def test_oldest_entry_evicted(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", outcome(accuracy=0.1))
        cache.put("b", outcome(accuracy=0.2))
        cache.put("c", outcome(accuracy=0.3))
        assert len(cache) == 2
        assert cache.get("a") is None
        assert cache.get("c").accuracy == 0.3
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", outcome(accuracy=0.1))
        cache.put("b", outcome(accuracy=0.2))
        assert cache.get("a") is not None  # now "b" is least recently used
        cache.put("c", outcome(accuracy=0.3))
        assert cache.get("b") is None
        assert cache.get("a").accuracy == 0.1

    def test_evicted_entries_survive_on_disk(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store", max_entries=1)
        cache.put("a", outcome(accuracy=0.1))
        cache.put("b", outcome(accuracy=0.2))  # evicts "a" from memory
        assert len(cache) == 1
        restored = cache.get("a")  # re-read from the disk tier
        assert restored is not None
        assert restored.accuracy == 0.1

    def test_unbounded_by_default(self):
        cache = ResultCache()
        for i in range(100):
            cache.put(f"k{i}", outcome())
        assert len(cache) == 100
        assert cache.max_entries is None

    def test_bad_cap_rejected(self):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(max_entries=0)

    def test_engine_env_configuration(self, monkeypatch):
        from repro.engine import engine_from_env

        monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "7")
        engine = engine_from_env()
        assert engine.cache.max_entries == 7


class TestResultCache:
    def test_memory_round_trip(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", outcome())
        assert cache.get("k") == outcome()
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert len(cache) == 1

    def test_disk_tier_persists_across_instances(self, tmp_path):
        first = ResultCache(disk_dir=tmp_path / "store")
        first.put("deadbeef", outcome(accuracy=0.75))
        second = ResultCache(disk_dir=tmp_path / "store")
        restored = second.get("deadbeef")
        assert restored is not None
        assert restored.accuracy == 0.75
        assert second.stats.hits == 1

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        store = tmp_path / "store"
        store.mkdir()
        (store / "bad.json").write_text("{not json")
        cache = ResultCache(disk_dir=store)
        assert cache.get("bad") is None

    def test_clear(self, tmp_path):
        cache = ResultCache(disk_dir=tmp_path / "store")
        cache.put("k", outcome())
        cache.clear(disk=True)
        assert len(cache) == 0
        assert cache.get("k") is None
