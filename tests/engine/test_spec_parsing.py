"""The shared spec-string grammar in engine.spec (CLI + study loader)."""

import pytest

from repro.engine import (AttackSpec, DefenseSpec, VictimSpec,
                          parse_attack_spec, parse_defense_spec,
                          parse_spec_string, parse_victim_spec)


class TestParseSpecString:
    def test_kind_only(self):
        assert parse_spec_string("radius") == ("radius", 0.0, {})

    def test_kind_and_percentile(self):
        assert parse_spec_string("radius:0.1") == ("radius", 0.1, {})

    def test_params_only(self):
        kind, pct, params = parse_spec_string("knn_sanitizer::k=7")
        assert (kind, pct) == ("knn_sanitizer", 0.0)
        assert params == {"k": 7}

    def test_full_form(self):
        kind, pct, params = parse_spec_string(
            "loss_filter:0.15:n_rounds=2,foo=bar")
        assert (kind, pct) == ("loss_filter", 0.15)
        assert params == {"n_rounds": 2, "foo": "bar"}

    def test_quoted_values(self):
        _, _, params = parse_spec_string(
            "label-flip::strategy='near boundary',note=\"a,b\"")
        assert params == {"strategy": "near boundary", "note": "a,b"}

    def test_nested_params_become_tuples(self):
        _, _, params = parse_spec_string(
            "mixed_defense::percentiles=(0.05,0.2),"
            "probabilities=[0.5,0.5],nested=[[1,2],[3,4]]")
        assert params["percentiles"] == (0.05, 0.2)
        assert params["probabilities"] == (0.5, 0.5)
        assert params["nested"] == ((1, 2), (3, 4))
        # Every value is hashable -> usable as canonical spec params.
        assert DefenseSpec("mixed_defense", 0.0, params)

    def test_empty_kind_rejected(self):
        with pytest.raises(ValueError, match="empty kind"):
            parse_spec_string(":0.1")
        with pytest.raises(ValueError, match="empty kind"):
            parse_spec_string("")

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError, match="not a number"):
            parse_spec_string("radius:lots")

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_spec_string("radius:0.1:k")


class TestParseDefenseSpec:
    def test_none_sentinel(self):
        assert parse_defense_spec("none") is None
        assert parse_defense_spec("  none ") is None

    def test_known_kind(self):
        assert parse_defense_spec("slab_filter:0.15") == \
            DefenseSpec("slab_filter", 0.15)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown defense kind"):
            parse_defense_spec("fortress:0.1")

    def test_out_of_range_percentile_rejected(self):
        with pytest.raises(ValueError, match="percentile"):
            parse_defense_spec("radius:1.5")


class TestParseAttackSpec:
    def test_clean_sentinel(self):
        assert parse_attack_spec("clean") is None

    def test_known_kind_with_params(self):
        spec = parse_attack_spec("label-flip::strategy=near_boundary")
        assert spec == AttackSpec("label-flip", 0.0,
                                  (("strategy", "near_boundary"),))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown attack kind"):
            parse_attack_spec("warp")


class TestParseVictimSpec:
    def test_none_passthrough(self):
        assert parse_victim_spec(None) is None

    def test_kind_and_params(self):
        assert parse_victim_spec("svm:epochs=60") == \
            VictimSpec("svm", (("epochs", 60),))
        assert parse_victim_spec("logistic") == VictimSpec("logistic")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown victim kind"):
            parse_victim_spec("oracle")


class TestCliSharesTheGrammar:
    """The CLI wrappers translate ValueError -> SystemExit, nothing else."""

    def test_wrappers_delegate(self):
        from repro.experiments.cli import (_parse_attack_arg,
                                           _parse_defense_arg,
                                           _parse_victim_arg)

        assert _parse_defense_arg("radius:0.1") == \
            parse_defense_spec("radius:0.1")
        assert _parse_attack_arg("boundary:0.05") == \
            parse_attack_spec("boundary:0.05")
        assert _parse_victim_arg("logistic") == parse_victim_spec("logistic")
        with pytest.raises(SystemExit, match="unknown defense kind"):
            _parse_defense_arg("fortress:0.1")

    def test_study_loader_shares_the_grammar(self):
        from repro.study import ScenarioGrid

        grid = ScenarioGrid(defenses=("knn_sanitizer::k=7",),
                            attacks=("label-flip::strategy=near_boundary",))
        assert grid.defenses[0] == parse_defense_spec("knn_sanitizer::k=7")
        assert grid.attacks[0] == \
            parse_attack_spec("label-flip::strategy=near_boundary")
