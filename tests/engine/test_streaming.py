"""Streaming semantics: ``evaluate_stream`` / ``run_iter`` / progress.

The contract under test (ISSUE 4): ``evaluate_stream`` yields every
input spec exactly once; outcomes are bit-identical to
``evaluate_batch``; cache hits arrive first (in input order); arrival
order of computed rounds may vary, but the final results and the cache
state left behind do not.
"""

import numpy as np
import pytest

from repro.engine import (
    AttackSpec,
    EvaluationEngine,
    ProcessPoolBackend,
    RoundSpec,
    SerialBackend,
)
from repro.experiments.runner import make_synthetic_context


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=2, n_samples=120, n_features=3)


def batch(n_percentiles=3, n_seeds=1):
    specs = []
    for p in np.linspace(0.0, 0.3, n_percentiles):
        for s in range(n_seeds):
            specs.append(RoundSpec(filter_percentile=float(p), attack=None,
                                   seed=300 + s))
            specs.append(RoundSpec(filter_percentile=float(p),
                                   attack=AttackSpec("boundary", float(p)),
                                   poison_fraction=0.2, seed=300 + s))
    return specs


class TestEvaluateStream:
    def test_yields_every_spec_exactly_once(self, ctx):
        specs = batch()
        specs = specs + [specs[0], specs[1]]  # in-batch duplicates
        engine = EvaluationEngine("serial")
        pairs = list(engine.evaluate_stream(ctx, specs))
        assert len(pairs) == len(specs)
        yielded = [spec for spec, _ in pairs]
        assert sorted(map(repr, yielded)) == sorted(map(repr, specs))

    def test_outcomes_bit_identical_to_batch(self, ctx):
        specs = batch(n_seeds=2)
        stream_engine = EvaluationEngine("serial", cache=False)
        batch_engine = EvaluationEngine("serial", cache=False)
        streamed = dict(
            (repr(spec), outcome)
            for spec, outcome in stream_engine.evaluate_stream(ctx, specs))
        batched = batch_engine.evaluate_batch(ctx, specs)
        for spec, expected in zip(specs, batched):
            assert streamed[repr(spec)] == expected

    def test_cache_state_identical_to_batch(self, ctx):
        specs = batch()
        stream_engine = EvaluationEngine("serial")
        batch_engine = EvaluationEngine("serial")
        list(stream_engine.evaluate_stream(ctx, specs))
        batch_engine.evaluate_batch(ctx, specs)
        assert stream_engine.cache._memory == batch_engine.cache._memory
        assert stream_engine.rounds_computed == batch_engine.rounds_computed

    def test_cache_hits_come_first(self, ctx):
        engine = EvaluationEngine("serial")
        warm = batch(n_percentiles=2)
        engine.evaluate_batch(ctx, warm)
        cold = batch(n_percentiles=3)  # supersets the warm percentiles
        cold_only = [s for s in cold if s not in warm]
        pairs = list(engine.evaluate_stream(ctx, warm + cold_only))
        head = [spec for spec, _ in pairs[:len(warm)]]
        assert head == warm  # hits, in input order, before any compute

    def test_streamed_duplicates_share_one_computation(self, ctx):
        spec = batch(n_percentiles=1)[1]
        engine = EvaluationEngine("serial")
        pairs = list(engine.evaluate_stream(ctx, [spec, spec, spec]))
        assert len(pairs) == 3
        assert engine.rounds_computed == 1
        assert len({id(outcome) for _, outcome in pairs}) == 1

    def test_stream_appends_batch_log(self, ctx):
        engine = EvaluationEngine("serial")
        specs = batch()
        list(engine.evaluate_stream(ctx, specs))
        assert len(engine.batch_log) == 1
        entry = engine.batch_log[0]
        assert entry["n_specs"] == len(specs)
        assert entry["computed"] == len(specs)
        assert entry["cache_hits"] == 0

    def test_empty_stream(self, ctx):
        engine = EvaluationEngine("serial")
        assert list(engine.evaluate_stream(ctx, [])) == []


class TestRunIter:
    @pytest.mark.parametrize("backend", [SerialBackend(),
                                         ProcessPoolBackend(jobs=2)],
                             ids=["serial", "process"])
    def test_run_iter_matches_run(self, ctx, backend):
        specs = batch(n_seeds=2)
        expected = SerialBackend().run(ctx, specs)
        indexed = dict(backend.run_iter(ctx, specs))
        assert sorted(indexed) == list(range(len(specs)))
        assert [indexed[i] for i in range(len(specs))] == expected


class TestProgressCallback:
    def test_progress_path_matches_plain_batch(self, ctx):
        specs = batch(n_seeds=2)
        plain = EvaluationEngine("serial", cache=False)
        streamed = EvaluationEngine("serial", cache=False)
        calls = []
        got = streamed.evaluate_batch(
            ctx, specs, progress=lambda done, total: calls.append((done, total)))
        assert got == plain.evaluate_batch(ctx, specs)
        assert calls == [(i + 1, len(specs)) for i in range(len(specs))]

    def test_progress_counts_cache_hits(self, ctx):
        engine = EvaluationEngine("serial")
        specs = batch()
        engine.evaluate_batch(ctx, specs)
        calls = []
        engine.evaluate_batch(ctx, specs,
                              progress=lambda d, t: calls.append((d, t)))
        assert calls[-1] == (len(specs), len(specs))
        assert engine.rounds_computed == len(specs)  # nothing recomputed


class TestClusterStream:
    def test_cluster_stream_matches_serial(self, ctx):
        """evaluate_stream over the cluster backend: exactly-once and
        bit-identical, arrival order free."""
        pytest.importorskip("repro.cluster")
        from repro.cluster.backend import ClusterBackend
        from repro.cluster.server import ShardServer
        import threading

        specs = batch(n_seeds=2)
        expected = {repr(s): o for s, o in zip(
            specs, EvaluationEngine("serial", cache=False)
            .evaluate_batch(ctx, specs))}

        servers = [ShardServer(ctx, port=0) for _ in range(2)]
        threads = [threading.Thread(target=s.serve_forever, daemon=True)
                   for s in servers]
        for t in threads:
            t.start()
        try:
            backend = ClusterBackend(
                shards=[(s.host, s.port) for s in servers])
            engine = EvaluationEngine(backend, cache=False)
            pairs = list(engine.evaluate_stream(ctx, specs))
            assert len(pairs) == len(specs)
            for spec, outcome in pairs:
                assert outcome == expected[repr(spec)]
        finally:
            for s in servers:
                s.close()
            for t in threads:
                t.join(timeout=5.0)
