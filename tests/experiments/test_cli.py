"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.seed == 0
        assert args.n_samples is None
        assert args.poison_fraction == 0.2

    def test_table1_n_radii(self):
        args = build_parser().parse_args(["table1", "--n-radii", "2", "4"])
        assert args.n_radii == [2, 4]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_figure1_runs_and_archives(self, capsys, tmp_path):
        out_path = str(tmp_path / "sweep.json")
        code = main(["figure1", "--n-samples", "400", "--json", out_path])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Figure 1" in captured
        from repro.experiments.results import results_from_json
        restored = results_from_json(out_path)
        assert restored.poison_fraction == 0.2

    def test_paper_table1_runs(self, capsys):
        code = main(["paper-table1"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "n=2 (paper)" in captured
        assert "51.2%" in captured

    def test_proposition1_runs(self, capsys):
        code = main(["proposition1", "--n-samples", "400"])
        assert code == 0
        assert "pure NE exists" in capsys.readouterr().out

    def test_commands_print_engine_stats(self, capsys):
        main(["figure1", "--n-samples", "300"])
        out = capsys.readouterr().out
        assert "Engine stats" in out
        assert "cache hits" in out


class TestCrossGame:
    """The cross-family game end to end through the CLI."""

    ARGS = ["cross-game", "--n-samples", "300",
            "--defenses", "radius:0.1", "slab_filter:0.1",
            "loss_filter:0.1:n_rounds=1",
            "--attacks", "boundary:0.05", "label-flip", "clean"]

    def test_runs_and_reports(self, capsys):
        code = main(self.ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "Cross-family empirical game" in out
        assert "slab_filter@10.0%" in out
        assert "game value (accuracy):" in out
        assert "Engine stats" in out

    def test_serial_and_process_identical(self, tmp_path, capsys):
        import json

        serial_path = str(tmp_path / "serial.json")
        process_path = str(tmp_path / "process.json")
        assert main(self.ARGS + ["--json", serial_path]) == 0
        assert main(self.ARGS + ["--backend", "process", "--jobs", "2",
                                 "--json", process_path]) == 0
        capsys.readouterr()
        with open(serial_path) as fh:
            serial = json.load(fh)
        with open(process_path) as fh:
            process = json.load(fh)
        assert serial == process
        assert serial["type"] == "CrossGameResult"
        assert len(serial["data"]["defense_labels"]) == 3

    def test_victim_flag(self, capsys):
        code = main(["cross-game", "--n-samples", "300",
                     "--defenses", "radius:0.1", "percentile_filter:0.1",
                     "--attacks", "boundary:0.05",
                     "--victim", "logistic"])
        assert code == 0
        assert "victim model:              logistic" in capsys.readouterr().out

    def test_bad_specs_rejected(self):
        with pytest.raises(SystemExit, match="unknown defense kind"):
            main(["cross-game", "--defenses", "fortress:0.1",
                  "--attacks", "boundary:0.05"])
        with pytest.raises(SystemExit, match="unknown attack kind"):
            main(["cross-game", "--defenses", "radius:0.1",
                  "--attacks", "warp"])
        with pytest.raises(SystemExit, match="unknown victim kind"):
            main(["cross-game", "--defenses", "radius:0.1",
                  "--attacks", "boundary:0.05", "--victim", "oracle"])
        with pytest.raises(SystemExit, match="not a number"):
            main(["cross-game", "--defenses", "radius:lots",
                  "--attacks", "boundary:0.05"])

    def test_spec_params_parse(self):
        from repro.experiments.cli import _parse_attack_arg, _parse_defense_arg

        d = _parse_defense_arg(
            "mixed_defense::percentiles=(0.05,0.2),probabilities=(0.5,0.5)")
        assert dict(d.params)["percentiles"] == (0.05, 0.2)
        a = _parse_attack_arg("label-flip::strategy=near_boundary")
        assert dict(a.params)["strategy"] == "near_boundary"
        assert _parse_defense_arg("none") is None
        assert _parse_attack_arg("clean") is None


class TestProgressAndCluster:
    """The streaming progress path and the cluster backend flags."""

    def test_progress_streams_round_counts(self, capsys):
        # --progress forces the engine through evaluate_stream's
        # machinery even when stderr is not a terminal.
        code = main(["figure1", "--n-samples", "300", "--progress"])
        assert code == 0
        captured = capsys.readouterr()
        assert "figure1: round" in captured.err
        # the final redraw counts every spec of the sweep batch
        assert "round 26/26" in captured.err
        assert "Figure 1" in captured.out

    def test_no_progress_keeps_stderr_clean(self, capsys):
        code = main(["figure1", "--n-samples", "300", "--no-progress"])
        assert code == 0
        assert "round" not in capsys.readouterr().err

    def test_progress_results_identical_to_plain(self, tmp_path, capsys):
        plain_path = str(tmp_path / "plain.json")
        streamed_path = str(tmp_path / "streamed.json")
        assert main(["figure1", "--n-samples", "300",
                     "--no-progress", "--json", plain_path]) == 0
        assert main(["figure1", "--n-samples", "300",
                     "--progress", "--json", streamed_path]) == 0
        capsys.readouterr()
        import json

        with open(plain_path) as fh:
            plain = json.load(fh)
        with open(streamed_path) as fh:
            streamed = json.load(fh)
        assert plain == streamed

    def test_cluster_flags_parse(self):
        args = build_parser().parse_args(
            ["figure1", "--backend", "cluster",
             "--shards", "hostA:7781,hostB:7781"])
        assert args.backend == "cluster"
        assert args.shards == "hostA:7781,hostB:7781"

    def test_repro_cluster_serve_parser(self):
        args = build_parser().parse_args(
            ["repro-cluster", "serve", "--context", "synthetic",
             "--port", "7781", "--jobs", "2"])
        assert args.action == "serve"
        assert args.context == "synthetic"
        assert args.port == 7781

    def test_bad_shards_rejected(self):
        with pytest.raises(SystemExit, match="host:port"):
            main(["figure1", "--n-samples", "300",
                  "--backend", "cluster", "--shards", "nonsense"])
