"""Tests for the command-line interface."""

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.seed == 0
        assert args.n_samples is None
        assert args.poison_fraction == 0.2

    def test_table1_n_radii(self):
        args = build_parser().parse_args(["table1", "--n-radii", "2", "4"])
        assert args.n_radii == [2, 4]

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])


class TestCommands:
    def test_figure1_runs_and_archives(self, capsys, tmp_path):
        out_path = str(tmp_path / "sweep.json")
        code = main(["figure1", "--n-samples", "400", "--json", out_path])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Figure 1" in captured
        from repro.experiments.results import results_from_json
        restored = results_from_json(out_path)
        assert restored.poison_fraction == 0.2

    def test_paper_table1_runs(self, capsys):
        code = main(["paper-table1"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "n=2 (paper)" in captured
        assert "51.2%" in captured

    def test_proposition1_runs(self, capsys):
        code = main(["proposition1", "--n-samples", "400"])
        assert code == 0
        assert "pure NE exists" in capsys.readouterr().out
