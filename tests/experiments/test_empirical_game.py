"""Tests for the measured-game LP pipeline."""

import numpy as np
import pytest

from repro.experiments.empirical_game import (
    EmpiricalGameResult,
    build_empirical_game,
    solve_empirical_game,
)


@pytest.fixture(scope="module")
def measured(tiny_context):
    percentiles = np.array([0.0, 0.05, 0.15, 0.3])
    matrix = build_empirical_game(tiny_context, percentiles,
                                  poison_fraction=0.25, n_repeats=1)
    return percentiles, matrix


class TestBuildEmpiricalGame:
    def test_matrix_shape(self, measured):
        percentiles, matrix = measured
        assert matrix.shape == (4, 4)
        assert np.all((0.0 <= matrix) & (matrix <= 1.0))

    def test_below_diagonal_filtered_attacks_score_high(self, measured):
        _, matrix = measured
        # row i = filter, col j = attack; i > j means attack removed
        for i in range(4):
            for j in range(4):
                if i > j:
                    assert matrix[i, j] > matrix[j, j] - 0.05


class TestSolveEmpiricalGame:
    def test_solution_fields(self, tiny_context, measured):
        percentiles, matrix = measured
        res = solve_empirical_game(tiny_context, percentiles=percentiles,
                                   accuracy_matrix=matrix)
        assert isinstance(res, EmpiricalGameResult)
        assert abs(sum(res.defender_mix) - 1.0) < 1e-6
        assert abs(sum(res.attacker_mix) - 1.0) < 1e-6
        assert 0.0 <= res.game_value_accuracy <= 1.0

    def test_mixed_never_worse_than_pure(self, tiny_context, measured):
        percentiles, matrix = measured
        res = solve_empirical_game(tiny_context, percentiles=percentiles,
                                   accuracy_matrix=matrix)
        assert res.mixed_advantage >= -1e-9

    def test_strict_advantage_iff_no_saddle(self, tiny_context, measured):
        percentiles, matrix = measured
        res = solve_empirical_game(tiny_context, percentiles=percentiles,
                                   accuracy_matrix=matrix)
        if not res.has_saddle_point:
            assert res.mixed_advantage > 0.0
        else:
            assert res.mixed_advantage == pytest.approx(0.0, abs=1e-9)

    def test_support_helper(self, tiny_context, measured):
        percentiles, matrix = measured
        res = solve_empirical_game(tiny_context, percentiles=percentiles,
                                   accuracy_matrix=matrix)
        support = res.support()
        assert all(q > 0.01 for _, q in support)
        assert abs(sum(q for _, q in support) - 1.0) < 0.05

    def test_matrix_shape_validation(self, tiny_context):
        with pytest.raises(ValueError, match="does not match"):
            solve_empirical_game(tiny_context, percentiles=[0.0, 0.1],
                                 accuracy_matrix=np.zeros((3, 3)))

    def test_synthetic_no_saddle_matrix(self, tiny_context):
        # hand-built chase structure: defender wants to match the
        # attacker, attacker wants to mismatch -> no saddle
        A = np.array([[0.5, 0.9], [0.9, 0.5]])
        res = solve_empirical_game(tiny_context, percentiles=[0.0, 0.1],
                                   accuracy_matrix=A)
        assert not res.has_saddle_point
        assert res.mixed_advantage > 0.1
        np.testing.assert_allclose(res.defender_mix, [0.5, 0.5], atol=1e-6)
