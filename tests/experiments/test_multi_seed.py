"""Tests for multi-seed aggregation."""

import numpy as np
import pytest

from repro.experiments.multi_seed import (
    AggregatedSweep,
    aggregate_metric,
    run_multi_seed_sweep,
)
from repro.experiments.runner import make_synthetic_context


@pytest.fixture(scope="module")
def aggregated():
    return run_multi_seed_sweep(
        n_seeds=3,
        context_factory=lambda seed: make_synthetic_context(
            seed=seed, n_samples=260, n_features=4
        ),
        percentiles=np.array([0.0, 0.1, 0.3]),
        poison_fraction=0.25,
    )


class TestRunMultiSeedSweep:
    def test_shapes(self, aggregated):
        assert aggregated.acc_clean_mean.shape == (3,)
        assert aggregated.acc_attacked_std.shape == (3,)
        assert aggregated.n_seeds == 3
        assert len(aggregated.per_seed) == 3

    def test_stds_non_negative_and_bounded(self, aggregated):
        assert np.all(aggregated.acc_clean_std >= 0)
        assert np.all(aggregated.acc_clean_std < 0.5)

    def test_mean_within_seed_range(self, aggregated):
        per_seed = np.vstack([s.acc_attacked for s in aggregated.per_seed])
        assert np.all(aggregated.acc_attacked_mean <= per_seed.max(axis=0) + 1e-12)
        assert np.all(aggregated.acc_attacked_mean >= per_seed.min(axis=0) - 1e-12)

    def test_best_pure(self, aggregated):
        p, acc = aggregated.best_pure
        assert p in aggregated.percentiles
        assert acc == aggregated.acc_attacked_mean.max()

    def test_as_sweep_result_roundtrip(self, aggregated):
        sweep = aggregated.as_sweep_result("agg-test")
        assert sweep.dataset_name == "agg-test"
        np.testing.assert_allclose(sweep.acc_clean, aggregated.acc_clean_mean)
        assert sweep.n_repeats == 3


class TestAggregateMetric:
    def test_constant_function(self):
        out = aggregate_metric(lambda seed: 2.5, n_seeds=4)
        assert out["mean"] == 2.5
        assert out["std"] == 0.0
        assert out["min"] == out["max"] == 2.5

    def test_seed_dependent_function(self):
        out = aggregate_metric(lambda seed: float(seed % 7), n_seeds=5)
        assert len(out["values"]) == 5
        assert out["min"] <= out["mean"] <= out["max"]

    def test_deterministic(self):
        a = aggregate_metric(lambda seed: float(seed % 100), n_seeds=3, base_seed=1)
        b = aggregate_metric(lambda seed: float(seed % 100), n_seeds=3, base_seed=1)
        assert a["values"] == b["values"]
