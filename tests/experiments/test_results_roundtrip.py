"""results_from_json covers every result type the drivers produce."""

import json

import numpy as np
import pytest

from repro.experiments.empirical_game import (CrossGameResult,
                                              EmpiricalGameResult)
from repro.experiments.multi_seed import AggregatedSweep
from repro.experiments.results import (GridResult, MixedEvalResult,
                                       PureSweepResult, results_from_json,
                                       results_to_json)


def sweep(seed=0):
    return PureSweepResult(
        percentiles=[0.0, 0.1], acc_clean=[0.9, 0.88],
        acc_attacked=[0.5 + seed / 100, 0.7], n_poison=40,
        poison_fraction=0.2, dataset_name="test", n_repeats=1)


class TestEmpiricalGameRoundTrip:
    def result(self):
        return EmpiricalGameResult(
            percentiles=[0.0, 0.1], accuracy_matrix=[[0.5, 0.6], [0.7, 0.65]],
            defender_mix=[0.4, 0.6], attacker_mix=[0.3, 0.7],
            game_value_accuracy=0.64, best_pure_accuracy=0.6,
            best_pure_percentile=0.1, mixed_advantage=0.04,
            has_saddle_point=False, n_repeats=2,
            defender_support=[(0.1, 0.6)])

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "eg.json")
        results_to_json(self.result(), path)
        restored = results_from_json(path)
        assert isinstance(restored, EmpiricalGameResult)
        assert restored.game_value_accuracy == 0.64
        assert restored.support() == [(0.0, 0.4), (0.1, 0.6)]
        # Stable under a second pass (tuples normalise to lists once).
        assert results_to_json(restored) == \
            results_to_json(results_from_json(results_to_json(restored)))


class TestCrossGameRoundTrip:
    def test_round_trip(self, tmp_path):
        result = CrossGameResult(
            defense_labels=["radius@10.0%", "none"],
            attack_labels=["boundary@5.0%", "clean"],
            accuracy_matrix=[[0.6, 0.9], [0.4, 0.91]],
            defender_mix=[1.0, 0.0], attacker_mix=[1.0, 0.0],
            game_value_accuracy=0.6, best_pure_accuracy=0.6,
            best_pure_defense="radius@10.0%", mixed_advantage=0.0,
            has_saddle_point=True, victim="logistic", n_repeats=1)
        path = str(tmp_path / "cg.json")
        results_to_json(result, path)
        restored = results_from_json(path)
        assert restored == result


class TestAggregatedSweepRoundTrip:
    def test_round_trip_with_ndarrays_and_nesting(self):
        agg = AggregatedSweep(
            percentiles=np.array([0.0, 0.1]),
            acc_clean_mean=np.array([0.9, 0.88]),
            acc_clean_std=np.array([0.01, 0.02]),
            acc_attacked_mean=np.array([0.6, 0.7]),
            acc_attacked_std=np.array([0.05, 0.03]),
            n_seeds=2, per_seed=[sweep(0), sweep(1)])
        restored = results_from_json(results_to_json(agg))
        assert isinstance(restored, AggregatedSweep)
        np.testing.assert_array_equal(restored.percentiles, agg.percentiles)
        np.testing.assert_array_equal(restored.acc_attacked_std,
                                      agg.acc_attacked_std)
        assert restored.per_seed == agg.per_seed
        assert restored.best_pure == agg.best_pure
        # The reconstruction is fully usable, not just equal-looking.
        assert restored.as_sweep_result("x").n_repeats == 2


class TestNewRecordTypes:
    def test_mixed_eval_and_grid_round_trip(self):
        mixed = MixedEvalResult(
            percentiles=[0.05, 0.2], probabilities=[0.5, 0.5],
            expected_accuracy=0.7, dispersion=0.1,
            accuracy_matrix=[[0.6, 0.7], [0.8, 0.75]],
            poison_fraction=0.25, n_repeats=1)
        assert results_from_json(results_to_json(mixed)) == mixed

        grid = GridResult(
            defense_labels=["radius@10.0%"], attack_labels=["clean"],
            victim_labels=["context"], fractions=[0.2],
            accuracy=[[[[0.9]]]], n_repeats=1, dataset_name="test")
        assert results_from_json(results_to_json(grid)) == grid


class TestUnknownTypes:
    def test_unknown_type_rejected_on_load(self):
        with pytest.raises(ValueError, match="unknown result type"):
            results_from_json(json.dumps({"type": "Mystery", "data": {}}))

    def test_unregistered_dataclass_still_dumps(self):
        from dataclasses import dataclass

        @dataclass
        class Oddball:
            x: int

        text = results_to_json(Oddball(3))
        assert json.loads(text) == {"type": "Oddball", "data": {"x": 3}}
