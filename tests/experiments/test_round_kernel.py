"""Round-kernel equivalence: cached geometry must change no bits.

The contract of :mod:`repro.experiments.kernel`: threading the
precomputed context geometry (clean centroid/distances, radius lookups,
fitted surrogate direction) through a round produces outcomes
**bit-identical** to computing everything from scratch — across
backends and cache states.
"""

import numpy as np
import pytest

from repro.attacks.optimal_boundary import OptimalBoundaryAttack, surrogate_direction
from repro.data.geometry import compute_centroid, distances_to_centroid
from repro.defenses.radius_filter import RadiusFilter
from repro.engine import AttackSpec, EvaluationEngine, RoundSpec
from repro.experiments.kernel import build_context_kernel
from repro.experiments.runner import evaluate_configuration, make_synthetic_context
from repro.ml.linear_svm import LinearSVM
from repro.utils.rng import derive_seed


@pytest.fixture(scope="module")
def ctx():
    return make_synthetic_context(seed=7, n_samples=240, n_features=5)


def reference_outcome(ctx, *, filter_percentile=None, percentile=None,
                      poison_fraction=0.25, seed=0):
    """One round computed entirely from scratch (no kernel anywhere)."""
    attack = None
    if percentile is not None:
        attack = OptimalBoundaryAttack(
            target_percentile=float(percentile),
            surrogate=ctx.attack_surrogate(),
            centroid_method=ctx.centroid_method,
        )
    return evaluate_configuration(
        ctx, filter_percentile=filter_percentile, attack=attack,
        poison_fraction=poison_fraction, seed=seed, use_kernel=False,
    )


def kernel_spec(filter_percentile, percentile, seed, poison_fraction=0.25):
    attack = None if percentile is None else AttackSpec("boundary", percentile)
    return RoundSpec(filter_percentile=filter_percentile, attack=attack,
                     poison_fraction=poison_fraction, seed=seed)


CASES = [
    # (filter percentile, attack percentile)
    (None, None),
    (0.15, None),
    (None, 0.05),
    (0.1, 0.05),     # filter above the attack: poison removed
    (0.05, 0.2),     # attack inside the filter: poison survives
    (0.3, 0.3),
]


class TestKernelEquivalence:
    @pytest.mark.parametrize("filt,att", CASES)
    def test_kernel_round_equals_from_scratch(self, ctx, filt, att):
        seed = derive_seed(99, "kernel-eq", filt, att)
        ref = reference_outcome(ctx, filter_percentile=filt, percentile=att,
                                seed=seed)
        engine = EvaluationEngine("serial", cache=False)
        out = engine.evaluate(ctx, kernel_spec(filt, att, seed))
        assert out == ref

    def test_kernel_round_equals_from_scratch_process(self, ctx):
        specs = [kernel_spec(f, a, derive_seed(99, "kernel-eq-proc", f, a))
                 for f, a in CASES]
        refs = [reference_outcome(ctx, filter_percentile=f, percentile=a,
                                  seed=derive_seed(99, "kernel-eq-proc", f, a))
                for f, a in CASES]
        engine = EvaluationEngine("process", jobs=2, cache=False)
        assert engine.evaluate_batch(ctx, specs) == refs

    def test_cache_states_identical(self, ctx):
        specs = [kernel_spec(f, a, derive_seed(5, "kernel-cache", f, a))
                 for f, a in CASES]
        cold = EvaluationEngine("serial", cache=True)
        first = cold.evaluate_batch(ctx, specs)
        second = cold.evaluate_batch(ctx, specs)  # all cache hits
        uncached = EvaluationEngine("serial", cache=False).evaluate_batch(ctx, specs)
        assert first == second == uncached


class TestAttackPrecomputedParity:
    def test_generate_identical_with_and_without_kernel(self, ctx):
        n_poison = 40
        with_kernel = ctx.boundary_attack(0.1)
        assert with_kernel.precomputed is not None
        without = OptimalBoundaryAttack(
            target_percentile=0.1, surrogate=ctx.attack_surrogate(),
            centroid_method=ctx.centroid_method,
        )
        Xa, ya = with_kernel.generate(ctx.X_train, ctx.y_train, n_poison, seed=3)
        Xb, yb = without.generate(ctx.X_train, ctx.y_train, n_poison, seed=3)
        np.testing.assert_array_equal(Xa, Xb)
        np.testing.assert_array_equal(ya, yb)

    def test_kernel_ignored_for_foreign_data(self, ctx):
        """On any array but the context's own, the kernel must not apply."""
        attack = ctx.boundary_attack(0.0)
        X_other = ctx.X_train[:100] * 2.0 + 1.0
        y_other = ctx.y_train[:100]
        X_p, _ = attack.generate(X_other, y_other, 10, seed=0)
        centroid = compute_centroid(X_other, method=ctx.centroid_method)
        dist = distances_to_centroid(X_p, centroid)
        max_r = distances_to_centroid(X_other, centroid).max()
        # Points sit (just) inside the *foreign* data's boundary radius,
        # which differs from the context's — proof the fallback ran.
        assert np.all(dist <= max_r)
        assert not np.allclose(max_r, ctx.kernel().attack_radius(0.0))

    def test_direction_matches_surrogate_fit(self, ctx):
        direction = ctx.kernel().direction
        expected = surrogate_direction(ctx.X_train, ctx.y_train,
                                       ctx.attack_surrogate())
        np.testing.assert_array_equal(direction, expected)

    def test_surrogate_fitted_once_per_context(self, monkeypatch):
        fits = []
        original = LinearSVM.fit

        def counting_fit(self, X, y):
            fits.append(X.shape)
            return original(self, X, y)

        monkeypatch.setattr(LinearSVM, "fit", counting_fit)
        # Pin the plain per-round path: batched fit_many dispatch would
        # hide victim fits from the per-call counter (that path's own
        # accounting is covered by the engine batching tests).
        monkeypatch.setenv("REPRO_BATCH_FITS", "0")
        fresh = make_synthetic_context(seed=11, n_samples=160, n_features=4)
        engine = EvaluationEngine("serial", cache=False)
        specs = [kernel_spec(0.1, 0.05, seed) for seed in range(4)]
        engine.evaluate_batch(fresh, specs)
        # One surrogate fit (shared via the kernel) + one victim fit per
        # round; the pre-kernel path needed a surrogate refit every round.
        assert len(fits) == 1 + len(specs)


class TestFilterFastPath:
    def test_keep_mask_matches_radius_filter(self, ctx):
        """Genuine-row distance reuse is bitwise equal to full recompute."""
        kernel = build_context_kernel(ctx)
        attack = ctx.boundary_attack(0.05)
        from repro.attacks.base import poison_dataset

        X_mix, y_mix, is_poison, sources = poison_dataset(
            ctx.X_train, ctx.y_train, attack, fraction=0.25, seed=13,
            return_sources=True,
        )
        radius = kernel.filter_radius(0.1)
        fast = kernel.keep_mask(X_mix, y_mix, is_poison, sources, radius)
        clean_centroid = compute_centroid(ctx.X_train,
                                          method=ctx.centroid_method)
        reference = RadiusFilter(radius, centroid_method=ctx.centroid_method,
                                 centroid=clean_centroid).mask(X_mix, y_mix)
        np.testing.assert_array_equal(fast, reference)

    def test_filter_radius_matches_radius_map(self, ctx):
        kernel = ctx.kernel()
        for p in (0.01, 0.1, 0.25, 0.5):
            assert kernel.filter_radius(p) == ctx.radius_map.radius(p)

    def test_precomputed_centroid_rejected_with_per_class(self):
        with pytest.raises(ValueError, match="per_class"):
            RadiusFilter(1.0, per_class=True, centroid=np.zeros(3))


class TestKernelHousekeeping:
    def test_kernel_cached_on_context(self, ctx):
        assert ctx.kernel() is ctx.kernel()

    def test_kernel_never_pickled_with_context(self, ctx):
        import pickle

        ctx.kernel()  # ensure it exists
        clone = pickle.loads(pickle.dumps(ctx))
        assert "_kernel" not in clone.__dict__
        np.testing.assert_array_equal(clone.X_train, ctx.X_train)

    def test_clean_distances_alignment(self, ctx):
        kernel = ctx.kernel()
        assert kernel.clean_distances.shape == (ctx.n_train,)
        centroid = compute_centroid(ctx.X_train, method=ctx.centroid_method)
        np.testing.assert_array_equal(
            kernel.clean_distances, distances_to_centroid(ctx.X_train, centroid)
        )
