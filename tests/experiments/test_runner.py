"""Tests for the experiment pipeline."""

import numpy as np
import pytest

from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.experiments.runner import (
    evaluate_configuration,
    make_spambase_context,
    make_synthetic_context,
)


class TestContexts:
    def test_synthetic_context_shapes(self, tiny_context):
        ctx = tiny_context
        assert ctx.X_train.shape[0] == ctx.y_train.shape[0]
        assert ctx.X_test.shape[0] == ctx.y_test.shape[0]
        assert ctx.X_train.shape[1] == ctx.X_test.shape[1]

    def test_split_fraction(self, tiny_context):
        ctx = tiny_context
        total = ctx.X_train.shape[0] + ctx.X_test.shape[0]
        assert ctx.X_test.shape[0] / total == pytest.approx(0.3, abs=0.02)

    def test_spambase_context_subsampling(self):
        ctx = make_spambase_context(seed=0, n_samples=500)
        assert ctx.n_train + len(ctx.y_test) == 500
        assert ctx.dataset_name == "spambase-surrogate"
        assert not ctx.is_real_data

    def test_deterministic_context(self):
        a = make_synthetic_context(seed=3, n_samples=200)
        b = make_synthetic_context(seed=3, n_samples=200)
        np.testing.assert_array_equal(a.X_train, b.X_train)

    def test_radius_map_matches_train_data(self, tiny_context):
        ctx = tiny_context
        assert ctx.radius_map.distances.shape == (ctx.n_train,)

    def test_unknown_scaler_raises(self):
        with pytest.raises(ValueError, match="scaler"):
            make_synthetic_context(seed=0, scaler="quantile")

    def test_attack_surrogate_is_unfitted_victim(self, tiny_context):
        surrogate = tiny_context.attack_surrogate()
        assert getattr(surrogate, "coef_", None) is None

    def test_boundary_attack_factory(self, tiny_context):
        attack = tiny_context.boundary_attack(0.1)
        assert isinstance(attack, OptimalBoundaryAttack)
        assert attack.target_percentile == 0.1


class TestEvaluateConfiguration:
    def test_clean_baseline(self, tiny_context):
        out = evaluate_configuration(tiny_context)
        assert 0.7 < out.accuracy <= 1.0
        assert out.n_poison == 0
        assert out.report is None

    def test_attack_reduces_accuracy(self, tiny_context):
        clean = evaluate_configuration(tiny_context).accuracy
        attacked = evaluate_configuration(
            tiny_context, attack=OptimalBoundaryAttack(0.0), poison_fraction=0.25
        )
        assert attacked.accuracy < clean
        assert attacked.n_poison > 0

    def test_filter_restores_accuracy(self, tiny_context):
        attacked = evaluate_configuration(
            tiny_context, attack=OptimalBoundaryAttack(0.02), poison_fraction=0.25
        ).accuracy
        defended = evaluate_configuration(
            tiny_context, filter_percentile=0.1,
            attack=OptimalBoundaryAttack(0.02), poison_fraction=0.25,
        )
        assert defended.accuracy > attacked
        assert defended.report.poison_recall > 0.9

    def test_attack_inside_filter_survives(self, tiny_context):
        out = evaluate_configuration(
            tiny_context, filter_percentile=0.05,
            attack=OptimalBoundaryAttack(0.2), poison_fraction=0.25,
        )
        assert out.report.poison_recall < 0.1

    def test_deterministic_given_seed(self, tiny_context):
        a = evaluate_configuration(tiny_context, filter_percentile=0.1,
                                   attack=OptimalBoundaryAttack(0.1), seed=5)
        b = evaluate_configuration(tiny_context, filter_percentile=0.1,
                                   attack=OptimalBoundaryAttack(0.1), seed=5)
        assert a.accuracy == b.accuracy

    def test_filter_metadata(self, tiny_context):
        out = evaluate_configuration(tiny_context, filter_percentile=0.15)
        assert out.filter_percentile == 0.15
        assert out.filter_radius == pytest.approx(
            tiny_context.radius_map.radius(0.15)
        )
        assert out.n_removed > 0
