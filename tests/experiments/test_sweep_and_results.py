"""Tests for the sweep harnesses, result records and reporting."""

import json

import numpy as np
import pytest

from repro.core.mixed_strategy import MixedDefense
from repro.experiments.payoff_sweep import (
    evaluate_mixed_defense,
    run_pure_strategy_sweep,
    run_table1_experiment,
)
from repro.experiments.reporting import (
    ascii_series,
    ascii_table,
    format_pure_sweep,
    format_table1,
)
from repro.experiments.results import (
    MixedStrategyResult,
    PureSweepResult,
    results_from_json,
    results_to_json,
)


@pytest.fixture(scope="module")
def sweep(tiny_context):
    return run_pure_strategy_sweep(
        tiny_context,
        percentiles=np.array([0.0, 0.05, 0.1, 0.2, 0.3]),
        poison_fraction=0.25,
    )


class TestPureSweep:
    def test_result_alignment(self, sweep):
        assert len(sweep.percentiles) == len(sweep.acc_clean) == len(sweep.acc_attacked)

    def test_attack_hurts_at_weak_filters(self, sweep):
        assert sweep.acc_attacked[0] < sweep.acc_clean[0] - 0.05

    def test_best_pure(self, sweep):
        p, acc = sweep.best_pure
        assert acc == max(sweep.acc_attacked)
        assert p in sweep.percentiles

    def test_clean_baseline_property(self, sweep):
        assert sweep.clean_baseline == sweep.acc_clean[0]

    def test_requires_valid_fraction(self, tiny_context):
        with pytest.raises(ValueError):
            run_pure_strategy_sweep(tiny_context, poison_fraction=1.0)


class TestMixedDefenseEvaluation:
    def test_matrix_shape_and_bounds(self, tiny_context):
        defense = MixedDefense(percentiles=np.array([0.05, 0.2]),
                               probabilities=np.array([0.5, 0.5]))
        acc, std, matrix = evaluate_mixed_defense(tiny_context, defense,
                                                  poison_fraction=0.25)
        assert matrix.shape == (2, 2)
        assert 0.0 <= acc <= 1.0
        assert std >= 0.0

    def test_filtered_attack_scores_higher(self, tiny_context):
        defense = MixedDefense(percentiles=np.array([0.05, 0.2]),
                               probabilities=np.array([0.5, 0.5]))
        _, _, matrix = evaluate_mixed_defense(tiny_context, defense,
                                              poison_fraction=0.25)
        # strong filter (row 1) vs shallow attack (col 0): poison removed,
        # accuracy above the surviving case (row 0, col 1)
        assert matrix[1, 0] > matrix[0, 1]


class TestTable1Experiment:
    def test_rows_produced(self, tiny_context, sweep):
        results = run_table1_experiment(tiny_context, sweep,
                                        n_radii_values=(2,),
                                        poison_fraction=0.25)
        assert len(results) == 1
        row = results[0]
        assert row.n_radii == 2
        assert len(row.percentiles) == 2
        assert abs(sum(row.probabilities) - 1.0) < 1e-9
        assert 0.0 <= row.accuracy <= 1.0
        assert row.wall_time_seconds > 0


class TestResultsSerialisation:
    def test_roundtrip_sweep(self, sweep):
        text = results_to_json(sweep)
        restored = results_from_json(text)
        assert isinstance(restored, PureSweepResult)
        assert restored.percentiles == sweep.percentiles
        assert restored.acc_attacked == sweep.acc_attacked

    def test_roundtrip_via_file(self, sweep, tmp_path):
        path = str(tmp_path / "result.json")
        results_to_json(sweep, path)
        restored = results_from_json(path)
        assert restored.dataset_name == sweep.dataset_name

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown result type"):
            results_from_json(json.dumps({"type": "Bogus", "data": {}}))

    def test_mixed_result_roundtrip(self):
        row = MixedStrategyResult(
            n_radii=2, percentiles=[0.1, 0.2], probabilities=[0.6, 0.4],
            accuracy=0.85, accuracy_std=0.01, expected_loss=0.1,
            best_pure_accuracy=0.84, best_pure_percentile=0.15,
        )
        restored = results_from_json(results_to_json(row))
        assert restored.percentiles == [0.1, 0.2]


class TestReporting:
    def test_ascii_table_renders(self):
        out = ascii_table(["a", "b"], [(1, 2), (3, 4)], title="T")
        assert "T" in out
        assert "| 1" in out

    def test_ascii_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="cells"):
            ascii_table(["a", "b"], [(1,)])

    def test_ascii_series_renders(self):
        out = ascii_series([0, 1, 2], [1.0, 0.5, 0.8])
        assert "*" in out

    def test_format_pure_sweep(self, sweep):
        out = format_pure_sweep(sweep)
        assert "Figure 1" in out
        assert "best pure defence" in out

    def test_format_table1(self):
        row = MixedStrategyResult(
            n_radii=2, percentiles=[0.1, 0.2], probabilities=[0.6, 0.4],
            accuracy=0.85, accuracy_std=0.01, expected_loss=0.1,
            best_pure_accuracy=0.84, best_pure_percentile=0.15,
        )
        out = format_table1([row])
        assert "Table 1" in out
        assert "n = 2" in out
