"""Tests for the double-oracle solver."""

import numpy as np
import pytest

from repro.gametheory.double_oracle import double_oracle
from repro.gametheory.lp_solver import solve_zero_sum_lp


def grid_oracles(payoff, grid):
    """Exact best-response oracles over a finite grid of actions."""

    def row_oracle(col_actions, col_strategy):
        values = [
            sum(q * payoff(r, c) for c, q in zip(col_actions, col_strategy))
            for r in grid
        ]
        return grid[int(np.argmax(values))]

    def col_oracle(row_actions, row_strategy):
        values = [
            sum(p * payoff(r, c) for r, p in zip(row_actions, row_strategy))
            for c in grid
        ]
        return grid[int(np.argmin(values))]

    return row_oracle, col_oracle


class TestDoubleOracle:
    def test_matching_pennies_value(self):
        A = {(0, 0): 1.0, (0, 1): -1.0, (1, 0): -1.0, (1, 1): 1.0}
        payoff = lambda r, c: A[(r, c)]
        row_o, col_o = grid_oracles(payoff, [0, 1])
        res = double_oracle(payoff, row_o, col_o,
                            initial_row=[0], initial_col=[0])
        assert res.converged
        assert res.value == pytest.approx(0.0, abs=1e-9)
        np.testing.assert_allclose(sorted(res.row_strategy), [0.5, 0.5], atol=1e-8)

    def test_saddle_game_stops_fast(self):
        payoff = lambda r, c: float(r - c)  # saddle at (max r, max c)
        grid = list(range(5))
        row_o, col_o = grid_oracles(payoff, grid)
        res = double_oracle(payoff, row_o, col_o,
                            initial_row=[0], initial_col=[0])
        assert res.converged
        assert res.value == pytest.approx(0.0)  # r=4, c=4
        assert res.iterations <= 5

    def test_matches_lp_on_random_matrix(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(6, 6))
        payoff = lambda r, c: float(A[r, c])
        row_o, col_o = grid_oracles(payoff, list(range(6)))
        res = double_oracle(payoff, row_o, col_o,
                            initial_row=[0], initial_col=[0])
        lp = solve_zero_sum_lp(A)
        assert res.converged
        assert res.value == pytest.approx(lp.value, abs=1e-7)

    def test_gap_trace_shrinks(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(8, 8))
        payoff = lambda r, c: float(A[r, c])
        row_o, col_o = grid_oracles(payoff, list(range(8)))
        res = double_oracle(payoff, row_o, col_o,
                            initial_row=[0], initial_col=[0])
        assert res.gap_trace[-1] <= 1e-6

    def test_strategies_match_action_lists(self):
        rng = np.random.default_rng(2)
        A = rng.normal(size=(5, 7))
        payoff = lambda r, c: float(A[r, c])

        def row_o(cols, q):
            return int(np.argmax([sum(qq * A[r, c] for c, qq in zip(cols, q))
                                  for r in range(5)]))

        def col_o(rows, p):
            return int(np.argmin([sum(pp * A[r, c] for r, pp in zip(rows, p))
                                  for c in range(7)]))

        # cap iterations so the run may stop early: lengths must still agree
        res = double_oracle(payoff, row_o, col_o, initial_row=[0],
                            initial_col=[0], max_iter=2)
        assert len(res.row_actions) == len(res.row_strategy)
        assert len(res.col_actions) == len(res.col_strategy)

    def test_support_helper(self):
        payoff = lambda r, c: float(r * c)
        row_o, col_o = grid_oracles(payoff, [-1.0, 0.0, 1.0])
        res = double_oracle(payoff, row_o, col_o,
                            initial_row=[-1.0, 1.0], initial_col=[-1.0, 1.0])
        support = res.support("col")
        assert all(q > 1e-3 for _, q in support)

    def test_empty_initial_raises(self):
        with pytest.raises(ValueError, match="non-empty"):
            double_oracle(lambda r, c: 0.0, lambda c, q: 0, lambda r, p: 0,
                          initial_row=[], initial_col=[0])


class TestPoisoningGameOracle:
    def test_value_below_algorithm1_and_consistent(self, analytic_curves):
        from repro.core.algorithm1 import compute_optimal_defense
        from repro.core.game import PoisoningGame
        from repro.core.oracle_solver import solve_poisoning_game_double_oracle

        N = 100
        game = PoisoningGame(curves=analytic_curves, n_poison=N)
        sol = solve_poisoning_game_double_oracle(game, n_grid=151, tol=1e-7,
                                                 max_iter=400)
        alg = compute_optimal_defense(analytic_curves, n_radii=4, n_poison=N)
        assert sol.converged
        # the unrestricted equilibrium value lower-bounds the
        # restricted-family (finite-support, equalized) loss
        assert sol.value <= alg.expected_loss + 1e-6
        # and it is a valid mixed defence
        assert sol.defense.probabilities.sum() == pytest.approx(1.0)

    def test_grid_refinement_stabilises_value(self, analytic_curves):
        from repro.core.game import PoisoningGame
        from repro.core.oracle_solver import solve_poisoning_game_double_oracle

        game = PoisoningGame(curves=analytic_curves, n_poison=100)
        coarse = solve_poisoning_game_double_oracle(game, n_grid=101,
                                                    tol=1e-7, max_iter=300)
        fine = solve_poisoning_game_double_oracle(game, n_grid=201,
                                                  tol=1e-7, max_iter=600)
        assert abs(coarse.value - fine.value) < 0.05 * max(abs(fine.value), 1e-9)
