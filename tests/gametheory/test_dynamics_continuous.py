"""Tests for best-response dynamics and the discretisation bridge."""

import numpy as np
import pytest

from repro.gametheory.best_response_dynamics import (
    best_response_dynamics,
    detect_cycle,
)
from repro.gametheory.continuous import DiscretizedZeroSumGame
from repro.gametheory.matrix_game import MatrixGame

MATCHING_PENNIES = np.array([[1.0, -1.0], [-1.0, 1.0]])
SADDLE = np.array([[5.0, 2.0], [1.0, 0.0]])


class TestDetectCycle:
    def test_no_cycle(self):
        assert detect_cycle([1, 2, 3, 4]) is None

    def test_simple_cycle(self):
        assert detect_cycle([1, 2, 3, 2]) == [2, 3]

    def test_fixed_point_cycle_length_one(self):
        assert detect_cycle([1, 2, 2]) == [2]

    def test_tuple_states(self):
        profiles = [(0, 0), (1, 0), (0, 1), (1, 0)]
        assert detect_cycle(profiles) == [(1, 0), (0, 1)]


class TestBestResponseDynamics:
    def test_converges_on_saddle_game(self):
        trace = best_response_dynamics(MatrixGame(SADDLE))
        assert trace.converged
        assert trace.equilibrium == (0, 1)

    def test_cycles_on_matching_pennies(self):
        trace = best_response_dynamics(MatrixGame(MATCHING_PENNIES))
        assert not trace.converged
        assert trace.cycle is not None
        assert trace.cycle_length >= 2

    def test_callable_form(self):
        # trivial fixed point at (0, 0)
        trace = best_response_dynamics((lambda c: 0, lambda r: 0), initial=(1, 1))
        assert trace.converged
        assert trace.equilibrium == (0, 0)

    def test_callable_requires_initial(self):
        with pytest.raises(ValueError, match="initial"):
            best_response_dynamics((lambda c: 0, lambda r: 0))

    def test_max_steps_bound(self):
        # walk that never repeats within the bound: strictly increasing
        trace = best_response_dynamics(
            (lambda c: c + 1, lambda r: r + 1), initial=(0, 0), max_steps=10
        )
        assert not trace.converged
        assert trace.cycle is None
        assert len(trace.profiles) <= 12


class TestDiscretizedZeroSumGame:
    @pytest.fixture
    def bilinear(self):
        # payoff x*y on [-1,1]^2: value 0, equilibrium at (0, 0)-ish mixes
        return DiscretizedZeroSumGame(
            payoff=lambda x, y: x * y,
            row_interval=(-1.0, 1.0),
            col_interval=(-1.0, 1.0),
        )

    def test_grid(self, bilinear):
        g = bilinear.grid(5, "row")
        np.testing.assert_allclose(g, [-1.0, -0.5, 0.0, 0.5, 1.0])

    def test_matrix_shape_and_labels(self, bilinear):
        game = bilinear.matrix_game(5, 7)
        assert game.shape == (5, 7)
        assert len(game.col_labels) == 7

    def test_solve_bilinear_value_zero(self, bilinear):
        sol, _ = bilinear.solve(11, 11)
        assert sol.value == pytest.approx(0.0, abs=1e-8)

    def test_refinement_converges(self):
        # concave-convex game: payoff -(x-0.3)^2 + (y-0.7)^2 has a pure
        # saddle at x=0.3, y=0.7 with value 0.
        game = DiscretizedZeroSumGame(
            payoff=lambda x, y: -((x - 0.3) ** 2) + (y - 0.7) ** 2,
            row_interval=(0.0, 1.0),
            col_interval=(0.0, 1.0),
        )
        sol, matrix = game.solve_refined(initial=11, refinements=2)
        assert sol.value == pytest.approx(0.0, abs=1e-3)
        values = matrix.value_trace
        assert abs(values[-1]) <= abs(values[0]) + 1e-9

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError, match="interval"):
            DiscretizedZeroSumGame(lambda x, y: 0.0, (1.0, 0.0), (0.0, 1.0))
