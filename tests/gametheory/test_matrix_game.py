"""Tests for finite zero-sum matrix games."""

import numpy as np
import pytest

from repro.gametheory.matrix_game import MatrixGame

MATCHING_PENNIES = np.array([[1.0, -1.0], [-1.0, 1.0]])
ROCK_PAPER_SCISSORS = np.array([
    [0.0, -1.0, 1.0],
    [1.0, 0.0, -1.0],
    [-1.0, 1.0, 0.0],
])
SADDLE = np.array([[3.0, 1.0, 2.0], [0.0, -1.0, 0.5]])  # saddle at (0, 1)


class TestConstruction:
    def test_shape(self):
        assert MatrixGame(MATCHING_PENNIES).shape == (2, 2)

    def test_labels_default_to_indices(self):
        game = MatrixGame(MATCHING_PENNIES)
        assert game.row_labels == [0, 1]

    def test_label_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="label lengths"):
            MatrixGame(MATCHING_PENNIES, row_labels=["a"])


class TestPureAnalysis:
    def test_matching_pennies_has_no_saddle(self):
        assert not MatrixGame(MATCHING_PENNIES).has_pure_equilibrium()

    def test_rps_has_no_saddle(self):
        assert not MatrixGame(ROCK_PAPER_SCISSORS).has_pure_equilibrium()

    def test_saddle_point_found(self):
        game = MatrixGame(SADDLE)
        assert (0, 1) in game.pure_equilibria()

    def test_maximin_minimax_on_saddle(self):
        game = MatrixGame(SADDLE)
        i, v_low = game.maximin_pure()
        j, v_high = game.minimax_pure()
        assert i == 0 and j == 1
        assert v_low == v_high == 1.0

    def test_maximin_below_minimax_without_saddle(self):
        game = MatrixGame(MATCHING_PENNIES)
        _, v_low = game.maximin_pure()
        _, v_high = game.minimax_pure()
        assert v_low < v_high


class TestMixedEvaluation:
    def test_value_uniform_pennies_is_zero(self):
        game = MatrixGame(MATCHING_PENNIES)
        assert game.value([0.5, 0.5], [0.5, 0.5]) == pytest.approx(0.0)

    def test_exploitability_zero_at_equilibrium(self):
        game = MatrixGame(ROCK_PAPER_SCISSORS)
        uniform = np.full(3, 1 / 3)
        assert game.exploitability(uniform, uniform) == pytest.approx(0.0, abs=1e-12)

    def test_exploitability_positive_off_equilibrium(self):
        game = MatrixGame(MATCHING_PENNIES)
        assert game.exploitability([1.0, 0.0], [1.0, 0.0]) > 0.5

    def test_strategy_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            MatrixGame(MATCHING_PENNIES).value([1.0], [0.5, 0.5])


class TestBestResponses:
    def test_row_best_response(self):
        game = MatrixGame(MATCHING_PENNIES)
        assert list(game.row_best_responses([1.0, 0.0])) == [0]

    def test_col_best_response(self):
        game = MatrixGame(MATCHING_PENNIES)
        # col player minimises; against row playing heads it prefers tails
        assert list(game.col_best_responses([1.0, 0.0])) == [1]

    def test_ties_return_all(self):
        game = MatrixGame(np.zeros((2, 3)))
        assert len(game.row_best_responses([1 / 3] * 3)) == 2


class TestDomination:
    def test_strictly_dominated_row_removed(self):
        A = np.array([[1.0, 1.0], [0.0, 0.0], [2.0, 3.0]])
        reduced = MatrixGame(A).drop_dominated_rows()
        assert reduced.shape == (1, 2)
        np.testing.assert_array_equal(reduced.payoffs, [[2.0, 3.0]])

    def test_no_domination_keeps_all(self):
        reduced = MatrixGame(ROCK_PAPER_SCISSORS).drop_dominated_rows()
        assert reduced.shape == (3, 3)
