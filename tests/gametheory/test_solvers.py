"""Cross-validated tests for the three game solvers.

The LP is exact; fictitious play and regret matching must converge to
the same values.  Classic games with known solutions anchor the tests.
"""

import numpy as np
import pytest

from repro.gametheory.fictitious_play import fictitious_play
from repro.gametheory.lp_solver import solve_zero_sum_lp
from repro.gametheory.matrix_game import MatrixGame
from repro.gametheory.regret_matching import regret_matching
from repro.gametheory.support_enumeration import support_enumeration

MATCHING_PENNIES = np.array([[1.0, -1.0], [-1.0, 1.0]])
RPS = np.array([[0.0, -1.0, 1.0], [1.0, 0.0, -1.0], [-1.0, 1.0, 0.0]])
# Asymmetric 2x2 game: value = (ad - bc) / (a + d - b - c) for payoffs
# [[a, b], [c, d]] without saddle: [[3, -1], [-2, 4]] -> value 1.0
ASYM = np.array([[3.0, -1.0], [-2.0, 4.0]])
ASYM_VALUE = (3 * 4 - (-1) * (-2)) / (3 + 4 - (-1) - (-2))


class TestLPSolver:
    def test_pennies_value_zero(self):
        sol = solve_zero_sum_lp(MATCHING_PENNIES)
        assert sol.value == pytest.approx(0.0, abs=1e-9)
        np.testing.assert_allclose(sol.row_strategy, [0.5, 0.5], atol=1e-8)

    def test_rps_uniform(self):
        sol = solve_zero_sum_lp(RPS)
        np.testing.assert_allclose(sol.row_strategy, 1 / 3, atol=1e-8)
        np.testing.assert_allclose(sol.col_strategy, 1 / 3, atol=1e-8)

    def test_asymmetric_known_value(self):
        sol = solve_zero_sum_lp(ASYM)
        assert sol.value == pytest.approx(ASYM_VALUE, abs=1e-9)

    def test_exploitability_near_zero(self):
        sol = solve_zero_sum_lp(ASYM)
        assert sol.exploitability < 1e-8

    def test_saddle_game(self):
        A = np.array([[5.0, 2.0], [1.0, 0.0]])  # saddle at (0, 1), value 2
        sol = solve_zero_sum_lp(A)
        assert sol.value == pytest.approx(2.0, abs=1e-9)

    def test_accepts_matrix_game(self):
        sol = solve_zero_sum_lp(MatrixGame(RPS))
        assert abs(sol.value) < 1e-9

    def test_rectangular_game(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(4, 7))
        sol = solve_zero_sum_lp(A)
        game = MatrixGame(A)
        assert game.exploitability(sol.row_strategy, sol.col_strategy) < 1e-7


class TestFictitiousPlay:
    def test_pennies_converges(self):
        res = fictitious_play(MATCHING_PENNIES, iterations=4000, seed=0)
        np.testing.assert_allclose(res.row_strategy, [0.5, 0.5], atol=0.05)
        assert res.value_bounds[0] <= 0.05 and res.value_bounds[1] >= -0.05

    def test_value_matches_lp(self):
        res = fictitious_play(ASYM, iterations=8000, seed=0)
        assert res.value_estimate == pytest.approx(ASYM_VALUE, abs=0.1)

    def test_exploitability_trace_recorded(self):
        res = fictitious_play(RPS, iterations=1000, seed=0, trace_every=100)
        assert len(res.exploitability_trace) >= 8

    def test_deterministic_given_seed(self):
        a = fictitious_play(RPS, iterations=500, seed=4)
        b = fictitious_play(RPS, iterations=500, seed=4)
        np.testing.assert_array_equal(a.row_strategy, b.row_strategy)


class TestRegretMatching:
    def test_pennies(self):
        res = regret_matching(MATCHING_PENNIES, iterations=5000)
        np.testing.assert_allclose(res.row_strategy, [0.5, 0.5], atol=0.03)
        assert res.final_exploitability < 0.05

    def test_rps(self):
        res = regret_matching(RPS, iterations=5000)
        np.testing.assert_allclose(res.row_strategy, 1 / 3, atol=0.05)

    def test_matches_lp_value_on_random_game(self):
        rng = np.random.default_rng(7)
        A = rng.normal(size=(5, 5))
        lp = solve_zero_sum_lp(A)
        rm = regret_matching(A, iterations=30_000)
        game = MatrixGame(A)
        rm_value = game.value(rm.row_strategy, rm.col_strategy)
        assert rm_value == pytest.approx(lp.value, abs=0.05)


class TestSupportEnumeration:
    def test_pennies_equilibrium_found(self):
        equilibria = support_enumeration(MATCHING_PENNIES)
        assert any(
            np.allclose(p, [0.5, 0.5]) and np.allclose(q, [0.5, 0.5])
            for p, q, _ in equilibria
        )

    def test_saddle_found_as_pure(self):
        A = np.array([[5.0, 2.0], [1.0, 0.0]])
        equilibria = support_enumeration(A)
        assert any(np.allclose(p, [1, 0]) and np.allclose(q, [0, 1])
                   for p, q, _ in equilibria)

    def test_values_agree_with_lp(self):
        rng = np.random.default_rng(3)
        A = rng.normal(size=(3, 3))
        lp = solve_zero_sum_lp(A)
        equilibria = support_enumeration(A)
        assert equilibria, "at least one NE must exist"
        for _, _, v in equilibria:
            assert v == pytest.approx(lp.value, abs=1e-6)

    def test_max_support_caps_search(self):
        equilibria = support_enumeration(RPS, max_support=2)
        assert equilibria == []  # RPS needs full support
