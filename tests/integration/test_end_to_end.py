"""End-to-end integration: the full paper pipeline on a small surrogate.

These tests exercise the complete chain the benchmarks run at larger
scale: dataset -> sweep (Figure 1) -> curve estimation -> Algorithm 1
(Table 1) -> empirical evaluation -> equilibrium checks.
"""

import numpy as np
import pytest

from repro.core.algorithm1 import compute_optimal_defense
from repro.core.best_response import find_pure_equilibrium
from repro.core.equilibrium import cross_check_with_lp
from repro.core.game import PoisoningGame
from repro.core.mixed_strategy import equalization_residual
from repro.core.payoff_estimation import estimate_payoff_curves
from repro.experiments.empirical_game import solve_empirical_game
from repro.experiments.payoff_sweep import run_pure_strategy_sweep
from repro.experiments.runner import make_spambase_context


@pytest.fixture(scope="module")
def ctx():
    # Large enough that the Figure-1 recovery shape is visible: with
    # only a few hundred genuine training points the 20 % attack
    # overwhelms the learner at every filter strength.
    return make_spambase_context(seed=0, n_samples=2600)


@pytest.fixture(scope="module")
def sweep(ctx):
    return run_pure_strategy_sweep(
        ctx,
        percentiles=np.array([0.0, 0.02, 0.05, 0.1, 0.15, 0.25, 0.4]),
        poison_fraction=0.2,
    )


@pytest.fixture(scope="module")
def curves(sweep):
    return estimate_payoff_curves(sweep.percentiles, sweep.acc_clean,
                                  sweep.acc_attacked, sweep.n_poison)


class TestFigure1Shape:
    def test_attack_devastates_unfiltered_model(self, sweep):
        assert sweep.acc_attacked[0] < sweep.clean_baseline - 0.05

    def test_filtering_recovers_accuracy(self, sweep):
        assert max(sweep.acc_attacked[1:]) > sweep.acc_attacked[0] + 0.03

    def test_clean_model_is_accurate(self, sweep):
        assert sweep.clean_baseline > 0.75


class TestCurveEstimation:
    def test_shapes_valid(self, curves):
        curves.validate_shape()

    def test_E_positive_at_boundary(self, curves):
        assert curves.E(0.0) > 0.0

    def test_damage_decays(self, curves):
        assert curves.E(0.0) > curves.E(curves.p_max) > 0.0


class TestProposition1OnMeasuredGame:
    def test_no_pure_equilibrium(self, curves, sweep):
        game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
        search = find_pure_equilibrium(game, n_grid=81)
        assert not search.exists


class TestAlgorithm1OnMeasuredCurves:
    def test_produces_equalized_mixture(self, curves, sweep):
        result = compute_optimal_defense(curves, n_radii=2,
                                         n_poison=sweep.n_poison)
        assert result.defense.n_support == 2
        assert equalization_residual(result.defense, curves) < 1e-6

    def test_lp_cross_check(self, curves, sweep):
        result = compute_optimal_defense(curves, n_radii=3,
                                         n_poison=sweep.n_poison)
        game = PoisoningGame(curves=curves, n_poison=sweep.n_poison)
        check = cross_check_with_lp(game, result.expected_loss, n_grid=61)
        # the model-based optimum is within a reasonable band of the
        # exact discretised value
        assert check.value_gap >= -0.02
        assert check.value_gap <= 0.5 * abs(check.lp_value) + 0.02


class TestEmpiricalGame:
    def test_no_saddle_and_mixed_advantage(self, ctx):
        res = solve_empirical_game(
            ctx, percentiles=np.array([0.0, 0.05, 0.15, 0.3]),
            poison_fraction=0.2, n_repeats=1,
        )
        # The measured game reproduces the paper's two headline claims:
        # no pure equilibrium, and the mixed defence (weakly) beats the
        # best pure one.
        assert res.mixed_advantage >= 0.0
        assert len(res.support()) >= 1
