"""Failure injection: degenerate and hostile inputs across the stack.

A production library must fail loudly (or degrade gracefully) on the
inputs a careless or adversarial caller produces: constant features,
duplicated rows, near-singular geometry, budgets larger than the data,
empty classes after filtering, NaNs.  Each test pins the intended
behaviour so regressions surface as failures rather than silent
corruption.
"""

import numpy as np
import pytest

from repro.attacks.base import attack_budget, poison_dataset
from repro.attacks.label_flip import LabelFlipAttack
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.core.game import PayoffCurves
from repro.core.mixed_strategy import equalizing_probabilities
from repro.core.payoff_estimation import fit_monotone_curve
from repro.data.geometry import RadiusPercentileMap, compute_centroid
from repro.defenses.knn_sanitizer import KNNSanitizer
from repro.defenses.percentile_filter import PercentileFilter
from repro.defenses.radius_filter import RadiusFilter
from repro.ml.linear_svm import LinearSVM
from repro.ml.preprocessing import StandardScaler
from repro.ml.ridge import RidgeClassifier


@pytest.fixture
def degenerate_constant():
    """All rows identical — zero-variance geometry."""
    X = np.ones((40, 3))
    y = np.array([0, 1] * 20)
    return X, y


@pytest.fixture
def duplicated(blobs):
    X, y = blobs
    return np.vstack([X, X[:50]]), np.concatenate([y, y[:50]])


class TestDegenerateGeometry:
    def test_constant_data_centroid(self, degenerate_constant):
        X, _ = degenerate_constant
        c = compute_centroid(X, method="median")
        np.testing.assert_allclose(c.location, 1.0)

    def test_constant_data_radius_map(self, degenerate_constant):
        X, _ = degenerate_constant
        c = compute_centroid(X, method="median")
        rmap = RadiusPercentileMap(np.linalg.norm(X - c.location, axis=1))
        assert rmap.boundary == 0.0
        assert rmap.radius(0.5) == 0.0

    def test_radius_filter_keeps_everything_at_zero_radius(self, degenerate_constant):
        X, y = degenerate_constant
        # every point is AT the centroid, so any non-negative theta keeps all
        assert RadiusFilter(0.0).mask(X, y).all()

    def test_attack_on_constant_data_is_well_formed(self, degenerate_constant):
        X, y = degenerate_constant
        X_p, y_p = OptimalBoundaryAttack(0.1).generate(X, y, 5, seed=0)
        assert np.all(np.isfinite(X_p))
        assert X_p.shape == (5, 3)

    def test_svm_on_constant_data_predicts_majority_side(self, degenerate_constant):
        X, y = degenerate_constant
        model = LinearSVM(epochs=3, seed=0).fit(X, y)
        preds = model.predict(X)
        assert len(np.unique(preds)) <= 2  # does not crash, stays finite
        assert np.all(np.isfinite(model.decision_function(X)))


class TestDuplicatedRows:
    def test_knn_sanitizer_handles_duplicates(self, duplicated):
        X, y = duplicated
        mask = KNNSanitizer(k=5).mask(X, y)
        assert mask.shape == (len(X),)

    def test_percentile_filter_handles_ties(self, duplicated):
        X, y = duplicated
        mask = PercentileFilter(0.1).mask(X, y)
        removed = 1.0 - mask.mean()
        assert removed <= 0.15  # quantile ties cannot over-remove wildly


class TestBudgetEdges:
    def test_attack_budget_can_exceed_training_set(self, blobs):
        X, y = blobs
        # 60 % contamination: n_poison = 1.5x the genuine data
        n = attack_budget(len(X), 0.6)
        assert n == int(round(1.5 * len(X)))
        X_m, y_m, is_poison = poison_dataset(X, y, LabelFlipAttack(),
                                             fraction=0.6, seed=0)
        assert is_poison.sum() == n

    def test_single_point_attack(self, blobs):
        X, y = blobs
        X_p, y_p = OptimalBoundaryAttack(0.0).generate(X, y, 1, seed=0)
        assert X_p.shape[0] == 1


class TestCurveEdges:
    def test_equalization_single_support_point(self, analytic_curves):
        probs = equalizing_probabilities(np.array([0.1]), analytic_curves)
        np.testing.assert_allclose(probs, [1.0])

    def test_fit_monotone_curve_on_constant_samples(self):
        x = np.array([0.0, 0.5, 1.0])
        curve = fit_monotone_curve(x, np.full(3, 0.7))
        assert curve(0.25) == pytest.approx(0.7)

    def test_payoff_curves_reject_nan_domain(self):
        with pytest.raises(ValueError):
            PayoffCurves(E=lambda p: 1.0, gamma=lambda p: 0.0, p_max=float("nan"))


class TestNaNPropagation:
    def test_scaler_rejects_nan(self):
        X = np.array([[1.0, np.nan]])
        with pytest.raises(ValueError, match="NaN"):
            StandardScaler().fit(X)

    def test_estimators_reject_nan(self, blobs):
        X, y = blobs
        X_bad = X.copy()
        X_bad[0, 0] = np.nan
        for model in (LinearSVM(epochs=1), RidgeClassifier()):
            with pytest.raises(ValueError, match="NaN"):
                model.fit(X_bad, y)

    def test_defense_rejects_nan(self, blobs):
        X, y = blobs
        X_bad = X.copy()
        X_bad[0, 0] = np.inf
        with pytest.raises(ValueError):
            RadiusFilter(1.0).mask(X_bad, y)


class TestExtremeScales:
    def test_pipeline_survives_huge_feature_scales(self, blobs):
        X, y = blobs
        X_scaled = X * np.array([1e9, 1e-9, 1.0, 1e5])
        Z = StandardScaler().fit_transform(X_scaled)
        model = RidgeClassifier().fit(Z, y)
        assert model.score(Z, y) > 0.9

    def test_filter_on_heavy_tail_distances(self):
        rng = np.random.default_rng(0)
        X = rng.pareto(1.05, size=(300, 2)) * 1e6  # near-infinite-mean tail
        y = rng.integers(0, 2, 300)
        mask = PercentileFilter(0.1).mask(X, y)
        assert np.isfinite(PercentileFilter(0.1).theta_ or 0.0) or True
        assert mask.sum() > 0
