"""Tests for estimator base machinery and the simple linear models."""

import numpy as np
import pytest

from repro.ml.base import BaseEstimator, clone_estimator, signed_labels
from repro.ml.logistic import LogisticRegression
from repro.ml.perceptron import Perceptron
from repro.ml.ridge import RidgeClassifier


class TestSignedLabels:
    def test_01_mapping(self):
        np.testing.assert_array_equal(signed_labels([0, 1, 0]), [-1, 1, -1])

    def test_signed_passthrough(self):
        np.testing.assert_array_equal(signed_labels([-1, 1]), [-1, 1])


class TestCloneAndParams:
    def test_get_params_roundtrip(self):
        model = RidgeClassifier(reg=0.5, fit_intercept=False)
        params = model.get_params()
        assert params == {"reg": 0.5, "fit_intercept": False}

    def test_clone_is_unfitted(self, blobs):
        X, y = blobs
        model = RidgeClassifier().fit(X, y)
        clone = clone_estimator(model)
        assert clone.coef_ is None
        assert clone.get_params() == model.get_params()

    def test_set_params_unknown_raises(self):
        with pytest.raises(ValueError, match="Unknown parameter"):
            RidgeClassifier().set_params(nonsense=1)

    def test_set_params_updates(self):
        model = RidgeClassifier().set_params(reg=2.0)
        assert model.reg == 2.0

    def test_repr_contains_params(self):
        assert "reg=0.001" in repr(RidgeClassifier(reg=0.001))


class TestRidgeClassifier:
    def test_separable_accuracy(self, blobs):
        X, y = blobs
        assert RidgeClassifier().fit(X, y).score(X, y) > 0.95

    def test_closed_form_deterministic(self, blobs):
        X, y = blobs
        m1 = RidgeClassifier().fit(X, y)
        m2 = RidgeClassifier().fit(X, y)
        np.testing.assert_array_equal(m1.coef_, m2.coef_)

    def test_heavy_reg_shrinks_weights(self, blobs):
        X, y = blobs
        light = RidgeClassifier(reg=1e-6).fit(X, y)
        heavy = RidgeClassifier(reg=100.0).fit(X, y)
        assert np.linalg.norm(heavy.coef_) < np.linalg.norm(light.coef_)

    def test_negative_reg_raises(self):
        with pytest.raises(ValueError):
            RidgeClassifier(reg=-1.0)

    def test_no_intercept(self, blobs):
        X, y = blobs
        model = RidgeClassifier(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0


class TestLogisticRegression:
    def test_separable_accuracy(self, blobs):
        X, y = blobs
        assert LogisticRegression(max_iter=300).fit(X, y).score(X, y) > 0.95

    def test_probabilities_in_unit_interval(self, blobs):
        X, y = blobs
        proba = LogisticRegression(max_iter=100).fit(X, y).predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_proba_monotone_in_score(self, blobs):
        X, y = blobs
        model = LogisticRegression(max_iter=100).fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)
        order = np.argsort(scores)
        assert np.all(np.diff(proba[order]) >= -1e-12)

    def test_converges_before_max_iter_on_easy_data(self, blobs):
        X, y = blobs
        # Regularisation keeps the optimum finite so the gradient can
        # actually reach the tolerance on separable data.
        model = LogisticRegression(reg=0.1, max_iter=5000, tol=1e-4).fit(X, y)
        assert model.n_iter_ < 5000

    def test_param_validation(self):
        with pytest.raises(ValueError):
            LogisticRegression(lr=0.0)
        with pytest.raises(ValueError):
            LogisticRegression(reg=-0.1)
        with pytest.raises(ValueError):
            LogisticRegression(max_iter=0)


class TestPerceptron:
    def test_separable_accuracy(self, blobs):
        X, y = blobs
        assert Perceptron(epochs=10, seed=0).fit(X, y).score(X, y) > 0.9

    def test_counts_mistakes(self, blobs):
        X, y = blobs
        model = Perceptron(epochs=5, seed=0).fit(X, y)
        assert model.n_mistakes_ >= 0

    def test_averaging_differs_from_final(self, blobs_hard):
        X, y = blobs_hard
        avg = Perceptron(epochs=5, seed=0, average=True).fit(X, y)
        fin = Perceptron(epochs=5, seed=0, average=False).fit(X, y)
        assert not np.allclose(avg.coef_, fin.coef_)

    def test_bad_epochs_raises(self):
        with pytest.raises(ValueError):
            Perceptron(epochs=0)


class TestAbstractBase:
    def test_cannot_instantiate(self):
        with pytest.raises(TypeError):
            BaseEstimator()
