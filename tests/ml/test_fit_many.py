"""Batched (lockstep) Pegasos: bit-identity with sequential fits.

ISSUE 6 tentpole: ``LinearSVM.fit_many`` runs B same-shape problems as
one stacked tensor program.  Batching is an execution strategy, never
an approximation — every assertion here is exact, against models fitted
by the plain sequential ``fit`` (itself pinned bit-for-bit to the seed
trainer by ``test_linear_svm.py``).
"""

import numpy as np
import pytest

from repro.data.synthetic import make_gaussian_blobs
from repro.ml import batched
from repro.ml.linear_svm import LinearSVM


def _problems(b, n=230, d=6, seed=0):
    """B distinct same-shape problems (different data and seeds)."""
    datasets = []
    for i in range(b):
        X, y = make_gaussian_blobs(n_samples=n, n_features=d,
                                   separation=1.5, seed=seed + 17 * i)
        datasets.append((X, y))
    return datasets


def _fit_sequentially(configs, datasets):
    models = [LinearSVM(**cfg) for cfg in configs]
    for model, (X, y) in zip(models, datasets):
        model.fit(X, y)
    return models


def assert_models_identical(batched_models, sequential_models):
    for got, want in zip(batched_models, sequential_models):
        np.testing.assert_array_equal(got.coef_, want.coef_)
        assert got.intercept_ == want.intercept_
        assert got.objective_trace_ == want.objective_trace_


class TestLockstepBitIdentity:
    @pytest.mark.parametrize("b", [1, 2, 7, 32])
    def test_default_hyperparameters(self, b):
        datasets = _problems(b)
        configs = [dict(epochs=6, seed=100 + i) for i in range(b)]
        assert LinearSVM.can_fit_many([LinearSVM(**c) for c in configs],
                                      datasets)
        models = LinearSVM.fit_many([LinearSVM(**c) for c in configs],
                                    datasets)
        assert_models_identical(models, _fit_sequentially(configs, datasets))

    @pytest.mark.parametrize("config", [
        dict(reg=1e-2, epochs=7, batch_size=32),
        dict(reg=1.0, epochs=9, batch_size=1),          # heavy projection
        dict(epochs=5, batch_size=512),                 # one batch/epoch
        dict(epochs=8, batch_size=17, average=False),   # ragged batches
        dict(epochs=6, batch_size=64, fit_intercept=False),
        dict(epochs=1, batch_size=64),                  # single epoch
    ])
    def test_hyperparameter_grid(self, config):
        b = 5
        datasets = _problems(b, n=190, d=5, seed=3)
        configs = [dict(config, seed=7 * i) for i in range(b)]
        models = LinearSVM.fit_many([LinearSVM(**c) for c in configs],
                                    datasets)
        assert_models_identical(models, _fit_sequentially(configs, datasets))

    def test_shared_dataset_distinct_seeds(self):
        # The engine's common case: one training matrix, many round seeds.
        X, y = make_gaussian_blobs(n_samples=260, n_features=6, seed=9)
        configs = [dict(epochs=6, seed=i) for i in range(4)]
        datasets = [(X, y)] * 4
        models = LinearSVM.fit_many([LinearSVM(**c) for c in configs],
                                    datasets)
        assert_models_identical(models, _fit_sequentially(configs, datasets))

    def test_kernel_probe_passes_on_this_platform(self):
        # The batched path must actually engage here — a silent fallback
        # would leave the perf claims untested on CI's own hardware.
        assert batched.pegasos_kernels_verified(230, 6, 64)
        assert LinearSVM.can_fit_many(
            [LinearSVM(epochs=4, seed=i) for i in range(3)],
            _problems(3))


class TestFallbacks:
    def test_ragged_shapes_fall_back_identically(self):
        datasets = [_problems(1, n=200)[0], _problems(1, n=150, seed=5)[0]]
        models = [LinearSVM(epochs=5, seed=0), LinearSVM(epochs=5, seed=1)]
        assert not LinearSVM.can_fit_many(models, datasets)
        fitted = LinearSVM.fit_many(models, datasets)
        reference = _fit_sequentially(
            [dict(epochs=5, seed=0), dict(epochs=5, seed=1)], datasets)
        assert_models_identical(fitted, reference)

    def test_mixed_hyperparameters_fall_back_identically(self):
        datasets = _problems(2)
        configs = [dict(epochs=5, seed=0), dict(epochs=6, seed=1)]
        models = [LinearSVM(**c) for c in configs]
        assert not LinearSVM.can_fit_many(models, datasets)
        assert_models_identical(LinearSVM.fit_many(models, datasets),
                                _fit_sequentially(configs, datasets))

    def test_objective_tracking_falls_back_identically(self):
        datasets = _problems(2)
        configs = [dict(epochs=5, seed=0, tol=1e-3),
                   dict(epochs=5, seed=1, tol=1e-3)]
        models = [LinearSVM(**c) for c in configs]
        assert not LinearSVM.can_fit_many(models, datasets)
        fitted = LinearSVM.fit_many(models, datasets)
        reference = _fit_sequentially(configs, datasets)
        assert_models_identical(fitted, reference)
        assert fitted[0].objective_trace_  # the trace really was tracked

    def test_single_feature_falls_back_identically(self):
        rng = np.random.default_rng(2)
        X = rng.standard_normal((120, 1))
        y = (X[:, 0] > 0).astype(int)
        configs = [dict(epochs=5, seed=0), dict(epochs=5, seed=1)]
        models = [LinearSVM(**c) for c in configs]
        assert not LinearSVM.can_fit_many(models, [(X, y)] * 2)
        assert_models_identical(LinearSVM.fit_many(models, [(X, y)] * 2),
                                _fit_sequentially(configs, [(X, y)] * 2))

    def test_failed_probe_falls_back_identically(self, monkeypatch):
        monkeypatch.setattr(batched, "_probe_pegasos",
                            lambda *a: False)
        monkeypatch.setattr(batched, "_pegasos_probe_cache", {})
        datasets = _problems(3)
        configs = [dict(epochs=5, seed=i) for i in range(3)]
        models = [LinearSVM(**c) for c in configs]
        assert not LinearSVM.can_fit_many(models, datasets)
        assert_models_identical(LinearSVM.fit_many(models, datasets),
                                _fit_sequentially(configs, datasets))

    def test_empty_and_mismatched_inputs(self):
        assert LinearSVM.fit_many([], []) == []
        with pytest.raises(ValueError, match="models"):
            LinearSVM.fit_many([LinearSVM()], [])
