"""Tests for random Fourier features and the approximate RBF SVM."""

import numpy as np
import pytest

from repro.ml.kernels import RandomFourierFeatures, RBFSampleSVM


class TestRandomFourierFeatures:
    def test_output_shape(self, blobs):
        X, _ = blobs
        Z = RandomFourierFeatures(64, seed=0).fit_transform(X)
        assert Z.shape == (len(X), 64)

    def test_bounded_features(self, blobs):
        X, _ = blobs
        Z = RandomFourierFeatures(64, seed=0).fit_transform(X)
        bound = np.sqrt(2.0 / 64)
        assert np.all(np.abs(Z) <= bound + 1e-12)

    def test_approximates_rbf_kernel(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 3))
        gamma = 0.5
        rff = RandomFourierFeatures(4000, gamma=gamma, seed=1).fit(X)
        approx = rff.approximate_kernel(X)
        sq_dists = ((X[:, None, :] - X[None, :, :]) ** 2).sum(-1)
        exact = np.exp(-gamma / 2.0 * sq_dists)
        assert np.abs(approx - exact).max() < 0.08

    def test_deterministic_given_seed(self, blobs):
        X, _ = blobs
        Z1 = RandomFourierFeatures(32, seed=3).fit_transform(X)
        Z2 = RandomFourierFeatures(32, seed=3).fit_transform(X)
        np.testing.assert_array_equal(Z1, Z2)

    def test_unfitted_raises(self, blobs):
        X, _ = blobs
        with pytest.raises(RuntimeError, match="not fitted"):
            RandomFourierFeatures().transform(X)

    def test_feature_mismatch_raises(self, blobs):
        X, _ = blobs
        rff = RandomFourierFeatures(16, seed=0).fit(X)
        with pytest.raises(ValueError, match="features"):
            rff.transform(X[:, :2])

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomFourierFeatures(gamma=0.0)
        with pytest.raises(ValueError):
            RandomFourierFeatures(n_components=0)


class TestRBFSampleSVM:
    def test_solves_xor(self):
        """The decisive test: XOR is impossible for a linear model but
        easy for an RBF machine."""
        from repro.data.synthetic import make_xor
        from repro.ml.ridge import RidgeClassifier

        X, y = make_xor(500, scale=0.3, seed=0)
        linear_acc = RidgeClassifier().fit(X, y).score(X, y)
        rbf = RBFSampleSVM(n_components=300, gamma=2.0, epochs=40, seed=0)
        rbf_acc = rbf.fit(X, y).score(X, y)
        assert linear_acc < 0.65
        assert rbf_acc > 0.9

    def test_separable_accuracy(self, blobs):
        X, y = blobs
        model = RBFSampleSVM(n_components=200, gamma=0.5, epochs=20, seed=0)
        assert model.fit(X, y).score(X, y) > 0.9

    def test_decision_function_finite(self, blobs):
        X, y = blobs
        model = RBFSampleSVM(n_components=100, epochs=5, seed=0).fit(X, y)
        assert np.all(np.isfinite(model.decision_function(X)))

    def test_unfitted_raises(self, blobs):
        X, _ = blobs
        with pytest.raises(RuntimeError, match="not fitted"):
            RBFSampleSVM().decision_function(X)

    def test_usable_as_experiment_victim(self):
        """The estimator plugs into the game harness unchanged."""
        from repro.experiments.runner import make_synthetic_context, \
            evaluate_configuration

        ctx = make_synthetic_context(
            seed=0, n_samples=240, n_features=4,
            model_factory=lambda seed: RBFSampleSVM(
                n_components=100, gamma=0.3, epochs=10, seed=seed),
        )
        out = evaluate_configuration(ctx)
        assert 0.6 < out.accuracy <= 1.0
