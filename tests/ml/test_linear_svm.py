"""Tests for the Pegasos hinge-loss SVM."""

import numpy as np
import pytest

from repro.ml.linear_svm import LinearSVM


class TestFit:
    def test_separable_accuracy(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=15, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_labels_signed(self, blobs):
        X, y = blobs
        preds = LinearSVM(epochs=5, seed=0).fit(X, y).predict(X)
        assert set(np.unique(preds)) <= {-1, 1}

    def test_decision_function_sign_matches_predict(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=5, seed=0).fit(X, y)
        scores = model.decision_function(X)
        np.testing.assert_array_equal(np.where(scores >= 0, 1, -1), model.predict(X))

    def test_objective_trace_decreases_overall(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=20, seed=0, average=False).fit(X, y)
        trace = model.objective_trace_
        assert trace[-1] < trace[0]

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        m1 = LinearSVM(epochs=5, seed=3).fit(X, y)
        m2 = LinearSVM(epochs=5, seed=3).fit(X, y)
        np.testing.assert_array_equal(m1.coef_, m2.coef_)
        assert m1.intercept_ == m2.intercept_

    def test_seed_changes_trajectory(self, blobs):
        X, y = blobs
        m1 = LinearSVM(epochs=3, seed=1, average=False).fit(X, y)
        m2 = LinearSVM(epochs=3, seed=2, average=False).fit(X, y)
        assert not np.array_equal(m1.coef_, m2.coef_)

    def test_accepts_signed_labels(self, blobs):
        X, y = blobs
        y_signed = np.where(y == 0, -1, 1)
        model = LinearSVM(epochs=10, seed=0).fit(X, y_signed)
        assert model.score(X, y_signed) > 0.9

    def test_averaging_improves_or_matches_nonseparable(self, blobs_hard):
        X, y = blobs_hard
        avg = LinearSVM(epochs=20, seed=0, average=True).fit(X, y).score(X, y)
        assert avg > 0.6  # averaged iterate is usable on noisy data

    def test_norm_within_pegasos_ball(self, blobs):
        X, y = blobs
        model = LinearSVM(reg=1e-2, epochs=10, seed=0).fit(X, y)
        assert np.linalg.norm(model.coef_) <= 1.0 / np.sqrt(1e-2) + 1e-6

    def test_early_stopping_with_tol(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=200, seed=0, tol=1e-2).fit(X, y)
        assert len(model.objective_trace_) < 200

    def test_no_intercept_option(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=5, seed=0, fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0


class TestValidation:
    def test_unfitted_predict_raises(self, blobs):
        X, _ = blobs
        with pytest.raises(RuntimeError, match="not fitted"):
            LinearSVM().predict(X)

    def test_bad_reg_raises(self):
        with pytest.raises(ValueError, match="reg"):
            LinearSVM(reg=0.0)

    def test_bad_epochs_raises(self):
        with pytest.raises(ValueError, match="epochs"):
            LinearSVM(epochs=0)

    def test_bad_batch_size_raises(self):
        with pytest.raises(ValueError, match="batch_size"):
            LinearSVM(batch_size=-1)

    def test_feature_mismatch_raises(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=2, seed=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.decision_function(X[:, :2])

    def test_objective_method(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=5, seed=0).fit(X, y)
        assert model.objective(X, y) >= 0.0
