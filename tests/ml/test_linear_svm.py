"""Tests for the Pegasos hinge-loss SVM."""

import numpy as np
import pytest

from repro.ml.base import signed_labels
from repro.ml.linear_svm import LinearSVM
from repro.ml.metrics import hinge_loss
from repro.utils.rng import as_generator
from repro.utils.validation import check_X_y


def seed_trainer_fit(model: LinearSVM, X, y):
    """The original (pre-fast-path) Pegasos loop, kept verbatim.

    The reference for the bit-identity property: the reworked
    ``LinearSVM.fit`` must reproduce this trainer's ``coef_`` and
    ``intercept_`` exactly for every configuration and seed.
    """
    X, y = check_X_y(X, y)
    y_signed = signed_labels(y).astype(float)
    n, d = X.shape
    rng = as_generator(model.seed)

    w = np.zeros(d)
    b = 0.0
    w_sum = np.zeros(d)
    b_sum = 0.0
    n_averaged = 0
    trace = []

    t = 0
    prev_obj = np.inf
    averaging_starts = max(1, model.epochs // 2)
    for epoch in range(model.epochs):
        order = rng.permutation(n)
        for start in range(0, n, model.batch_size):
            t += 1
            batch = order[start : start + model.batch_size]
            Xb, yb = X[batch], y_signed[batch]
            margins = yb * (Xb @ w + b)
            active = margins < 1.0
            eta = 1.0 / (model.reg * t)
            grad_w = model.reg * w
            if np.any(active):
                grad_w = grad_w - (yb[active, None] * Xb[active]).sum(axis=0) / len(batch)
            w = w - eta * grad_w
            if model.fit_intercept and np.any(active):
                b = b + eta * yb[active].sum() / len(batch)
            norm = np.linalg.norm(w)
            radius = 1.0 / np.sqrt(model.reg)
            if norm > radius:
                w = w * (radius / norm)
            if model.average and epoch >= averaging_starts:
                w_sum += w
                b_sum += b
                n_averaged += 1

        obj = 0.5 * model.reg * float(w @ w) + hinge_loss(y_signed, X @ w + b)
        trace.append(obj)
        if model.tol is not None and abs(prev_obj - obj) < model.tol:
            break
        prev_obj = obj

    if model.average and n_averaged > 0:
        return w_sum / n_averaged, float(b_sum / n_averaged), trace
    return w, float(b), trace


class TestFit:
    def test_separable_accuracy(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=15, seed=0).fit(X, y)
        assert model.score(X, y) > 0.95

    def test_predict_labels_signed(self, blobs):
        X, y = blobs
        preds = LinearSVM(epochs=5, seed=0).fit(X, y).predict(X)
        assert set(np.unique(preds)) <= {-1, 1}

    def test_decision_function_sign_matches_predict(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=5, seed=0).fit(X, y)
        scores = model.decision_function(X)
        np.testing.assert_array_equal(np.where(scores >= 0, 1, -1), model.predict(X))

    def test_objective_trace_decreases_overall(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=20, seed=0, average=False,
                          track_objective=True).fit(X, y)
        trace = model.objective_trace_
        assert trace[-1] < trace[0]

    def test_objective_trace_off_by_default(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=5, seed=0).fit(X, y)
        assert model.objective_trace_ == []

    def test_tol_implies_objective_tracking(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=10, seed=0, tol=0.0).fit(X, y)
        assert len(model.objective_trace_) > 0

    def test_deterministic_given_seed(self, blobs):
        X, y = blobs
        m1 = LinearSVM(epochs=5, seed=3).fit(X, y)
        m2 = LinearSVM(epochs=5, seed=3).fit(X, y)
        np.testing.assert_array_equal(m1.coef_, m2.coef_)
        assert m1.intercept_ == m2.intercept_

    def test_seed_changes_trajectory(self, blobs):
        X, y = blobs
        m1 = LinearSVM(epochs=3, seed=1, average=False).fit(X, y)
        m2 = LinearSVM(epochs=3, seed=2, average=False).fit(X, y)
        assert not np.array_equal(m1.coef_, m2.coef_)

    def test_accepts_signed_labels(self, blobs):
        X, y = blobs
        y_signed = np.where(y == 0, -1, 1)
        model = LinearSVM(epochs=10, seed=0).fit(X, y_signed)
        assert model.score(X, y_signed) > 0.9

    def test_averaging_improves_or_matches_nonseparable(self, blobs_hard):
        X, y = blobs_hard
        avg = LinearSVM(epochs=20, seed=0, average=True).fit(X, y).score(X, y)
        assert avg > 0.6  # averaged iterate is usable on noisy data

    def test_norm_within_pegasos_ball(self, blobs):
        X, y = blobs
        model = LinearSVM(reg=1e-2, epochs=10, seed=0).fit(X, y)
        assert np.linalg.norm(model.coef_) <= 1.0 / np.sqrt(1e-2) + 1e-6

    def test_early_stopping_with_tol(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=200, seed=0, tol=1e-2).fit(X, y)
        assert len(model.objective_trace_) < 200

    def test_no_intercept_option(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=5, seed=0, fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0


class TestFastPathBitIdentity:
    """The reworked fit must equal the seed trainer bit for bit."""

    CONFIGS = [
        dict(),  # the defaults
        dict(reg=1e-2, epochs=7, batch_size=32, seed=1),
        dict(reg=1e-4, epochs=12, batch_size=128, seed=2),     # batch > n/2
        dict(reg=1.0, epochs=9, batch_size=1, seed=3),         # heavy projection
        dict(epochs=11, batch_size=300, seed=4),               # one batch/epoch
        dict(epochs=10, batch_size=17, seed=5, average=False), # ragged batches
        dict(epochs=8, batch_size=64, seed=6, fit_intercept=False),
        dict(epochs=40, batch_size=64, seed=7, tol=1e-3),      # early stopping
        dict(epochs=15, batch_size=64, seed=8, tol=0.0),
        dict(epochs=1, batch_size=64, seed=9),                 # single epoch
    ]

    @pytest.mark.parametrize("config", CONFIGS)
    def test_coef_and_intercept_exact(self, blobs_hard, config):
        X, y = blobs_hard
        model = LinearSVM(**config).fit(X, y)
        ref_coef, ref_intercept, _ = seed_trainer_fit(LinearSVM(**config), X, y)
        np.testing.assert_array_equal(model.coef_, ref_coef)
        assert model.intercept_ == ref_intercept

    def test_objective_trace_exact_when_tracked(self, blobs_hard):
        X, y = blobs_hard
        model = LinearSVM(epochs=10, seed=0, track_objective=True).fit(X, y)
        _, _, ref_trace = seed_trainer_fit(LinearSVM(epochs=10, seed=0), X, y)
        assert model.objective_trace_ == ref_trace

    def test_early_stopping_epoch_count_matches(self, blobs):
        X, y = blobs
        config = dict(epochs=100, seed=0, tol=1e-2)
        model = LinearSVM(**config).fit(X, y)
        _, _, ref_trace = seed_trainer_fit(LinearSVM(**config), X, y)
        assert len(model.objective_trace_) == len(ref_trace)

    def test_large_shuffle_buffer_fallback_identical(self, blobs, monkeypatch):
        # Force the per-epoch permutation path (the pre-draw buffer is
        # skipped for large epochs x n) and check it changes nothing.
        import repro.ml.linear_svm as mod

        X, y = blobs
        with_buffer = LinearSVM(epochs=6, batch_size=32, seed=0).fit(X, y)
        monkeypatch.setattr(mod, "_PREDRAW_MAX_ENTRIES", 0)
        without_buffer = LinearSVM(epochs=6, batch_size=32, seed=0).fit(X, y)
        np.testing.assert_array_equal(with_buffer.coef_, without_buffer.coef_)
        assert with_buffer.intercept_ == without_buffer.intercept_


class TestValidation:
    def test_unfitted_predict_raises(self, blobs):
        X, _ = blobs
        with pytest.raises(RuntimeError, match="not fitted"):
            LinearSVM().predict(X)

    def test_bad_reg_raises(self):
        with pytest.raises(ValueError, match="reg"):
            LinearSVM(reg=0.0)

    def test_bad_epochs_raises(self):
        with pytest.raises(ValueError, match="epochs"):
            LinearSVM(epochs=0)

    def test_bad_batch_size_raises(self):
        with pytest.raises(ValueError, match="batch_size"):
            LinearSVM(batch_size=-1)

    def test_feature_mismatch_raises(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=2, seed=0).fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.decision_function(X[:, :2])

    def test_objective_method(self, blobs):
        X, y = blobs
        model = LinearSVM(epochs=5, seed=0).fit(X, y)
        assert model.objective(X, y) >= 0.0
