"""Tests for classification metrics."""

import numpy as np
import pytest

from repro.ml.metrics import (
    accuracy_score,
    confusion_matrix,
    f1_score,
    hinge_loss,
    precision_score,
    recall_score,
    roc_auc_score,
    zero_one_loss,
)


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, -1, 1], [1, -1, 1]) == 1.0

    def test_all_wrong(self):
        assert accuracy_score([1, 1], [-1, -1]) == 0.0

    def test_mixed_label_conventions(self):
        assert accuracy_score([0, 1, 0], [-1, 1, -1]) == 1.0

    def test_complement_of_zero_one(self):
        y, p = [1, -1, 1, -1], [1, 1, -1, -1]
        assert accuracy_score(y, p) + zero_one_loss(y, p) == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([], [])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 1], [1])


class TestConfusionMatrix:
    def test_layout(self):
        # one of each outcome
        cm = confusion_matrix([-1, -1, 1, 1], [-1, 1, -1, 1])
        np.testing.assert_array_equal(cm, [[1, 1], [1, 1]])

    def test_sums_to_n(self):
        cm = confusion_matrix([1, 1, -1], [1, -1, -1])
        assert cm.sum() == 3


class TestPrecisionRecallF1:
    def test_known_values(self):
        y_true = [1, 1, 1, -1, -1]
        y_pred = [1, 1, -1, 1, -1]
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_no_positive_predictions(self):
        assert precision_score([1, -1], [-1, -1]) == 0.0

    def test_no_positive_truth(self):
        assert recall_score([-1, -1], [1, -1]) == 0.0

    def test_f1_zero_when_degenerate(self):
        assert f1_score([-1, -1], [-1, -1]) == 0.0


class TestRocAuc:
    def test_perfect_ranking(self):
        assert roc_auc_score([1, 1, -1, -1], [0.9, 0.8, 0.2, 0.1]) == 1.0

    def test_inverted_ranking(self):
        assert roc_auc_score([1, 1, -1, -1], [0.1, 0.2, 0.8, 0.9]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = np.repeat([1, -1], 500)
        scores = rng.random(1000)
        assert abs(roc_auc_score(y, scores) - 0.5) < 0.06

    def test_ties_give_half_credit(self):
        assert roc_auc_score([1, -1], [0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(ValueError, match="each class"):
            roc_auc_score([1, 1], [0.5, 0.6])


class TestHingeLoss:
    def test_zero_when_margins_met(self):
        assert hinge_loss([1, -1], [2.0, -2.0]) == 0.0

    def test_known_value(self):
        # margins: 1*0.5 = 0.5 -> loss 0.5; -1*-1 = 1 -> loss 0
        assert hinge_loss([1, -1], [0.5, 1.0]) == pytest.approx((0.5 + 2.0) / 2)

    def test_unreduced_shape(self):
        losses = hinge_loss([1, 1, -1], [0.0, 2.0, 0.0], reduce=False)
        np.testing.assert_allclose(losses, [1.0, 0.0, 1.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            hinge_loss([1, 1], [0.5])
