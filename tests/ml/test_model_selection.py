"""Tests for splitting, cross-validation and grid search."""

import numpy as np
import pytest

from repro.ml.model_selection import (
    GridSearch,
    KFold,
    StratifiedKFold,
    cross_val_score,
    train_test_split,
)
from repro.ml.ridge import RidgeClassifier


class TestTrainTestSplit:
    def test_sizes(self, blobs):
        X, y = blobs
        X_tr, X_te, y_tr, y_te = train_test_split(X, y, test_size=0.3, seed=0)
        assert len(X_tr) + len(X_te) == len(X)
        assert abs(len(X_te) / len(X) - 0.3) < 0.02

    def test_stratification_preserves_ratio(self, blobs):
        X, y = blobs
        _, _, y_tr, y_te = train_test_split(X, y, test_size=0.3, stratify=True, seed=0)
        assert abs(y_tr.mean() - y_te.mean()) < 0.05

    def test_no_overlap_and_complete(self, blobs):
        X, y = blobs
        X_tr, X_te, _, _ = train_test_split(X, y, test_size=0.25, seed=1)
        combined = np.vstack([X_tr, X_te])
        assert combined.shape == X.shape
        # every original row appears exactly once
        orig_sorted = np.sort(X.view([("", X.dtype)] * X.shape[1]).ravel())
        comb_sorted = np.sort(combined.view([("", X.dtype)] * X.shape[1]).ravel())
        assert np.array_equal(orig_sorted, comb_sorted)

    def test_deterministic(self, blobs):
        X, y = blobs
        a = train_test_split(X, y, seed=5)[0]
        b = train_test_split(X, y, seed=5)[0]
        np.testing.assert_array_equal(a, b)

    def test_bad_test_size_raises(self, blobs):
        X, y = blobs
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=0.0)
        with pytest.raises(ValueError):
            train_test_split(X, y, test_size=1.0)


class TestKFold:
    def test_partitions(self, blobs):
        X, y = blobs
        seen = np.zeros(len(X), dtype=int)
        for train_idx, test_idx in KFold(5, seed=0).split(X):
            assert len(np.intersect1d(train_idx, test_idx)) == 0
            seen[test_idx] += 1
        np.testing.assert_array_equal(seen, 1)

    def test_fold_count(self, blobs):
        X, _ = blobs
        assert len(list(KFold(4, seed=0).split(X))) == 4

    def test_too_few_samples_raises(self):
        with pytest.raises(ValueError, match="cannot split"):
            list(KFold(5).split(np.zeros((3, 2))))

    def test_n_splits_validation(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestStratifiedKFold:
    def test_class_ratio_in_folds(self, blobs):
        X, y = blobs
        for _, test_idx in StratifiedKFold(4, seed=0).split(X, y):
            ratio = y[test_idx].mean()
            assert abs(ratio - y.mean()) < 0.1

    def test_partitions(self, blobs):
        X, y = blobs
        seen = np.zeros(len(X), dtype=int)
        for _, test_idx in StratifiedKFold(3, seed=0).split(X, y):
            seen[test_idx] += 1
        np.testing.assert_array_equal(seen, 1)

    def test_scarce_class_raises(self):
        X = np.zeros((10, 2))
        y = np.array([1, 0, 0, 0, 0, 0, 0, 0, 0, 0])
        with pytest.raises(ValueError, match="class"):
            list(StratifiedKFold(3).split(X, y))


class TestCrossValScore:
    def test_returns_one_score_per_fold(self, blobs):
        X, y = blobs
        scores = cross_val_score(RidgeClassifier(), X, y,
                                 cv=StratifiedKFold(4, seed=0))
        assert scores.shape == (4,)
        assert np.all((0 <= scores) & (scores <= 1))

    def test_separable_high_accuracy(self, blobs):
        X, y = blobs
        scores = cross_val_score(RidgeClassifier(), X, y)
        assert scores.mean() > 0.9


class TestGridSearch:
    def test_finds_best(self, blobs):
        X, y = blobs
        search = GridSearch(RidgeClassifier(), {"reg": [1e-4, 1e-1, 10.0]},
                            cv=StratifiedKFold(3, seed=0)).fit(X, y)
        assert search.best_params_["reg"] in (1e-4, 1e-1, 10.0)
        assert search.best_score_ == max(s for _, s in search.results_)
        assert len(search.results_) == 3

    def test_best_estimator_is_fitted(self, blobs):
        X, y = blobs
        search = GridSearch(RidgeClassifier(), {"reg": [1e-3, 1.0]},
                            cv=StratifiedKFold(3, seed=0)).fit(X, y)
        assert search.best_estimator_.score(X, y) > 0.8
