"""Tests for Gaussian naive Bayes."""

import numpy as np
import pytest

from repro.ml.naive_bayes import GaussianNaiveBayes


class TestGaussianNaiveBayes:
    def test_separable_accuracy(self, blobs):
        X, y = blobs
        assert GaussianNaiveBayes().fit(X, y).score(X, y) > 0.95

    def test_probabilities_bounded(self, blobs):
        X, y = blobs
        proba = GaussianNaiveBayes().fit(X, y).predict_proba(X)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_decision_sign_matches_probability_half(self, blobs):
        X, y = blobs
        model = GaussianNaiveBayes().fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)
        np.testing.assert_array_equal(scores > 0, proba > 0.5)

    def test_priors_sum_to_one(self, blobs):
        X, y = blobs
        model = GaussianNaiveBayes().fit(X, y)
        assert model.class_prior_.sum() == pytest.approx(1.0)

    def test_imbalanced_prior_learned(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(100, 2))
        y = np.array([1] * 80 + [0] * 20)
        model = GaussianNaiveBayes().fit(X, y)
        assert model.class_prior_[1] == pytest.approx(0.8)

    def test_constant_feature_handled(self, blobs):
        X, y = blobs
        X = np.column_stack([X, np.ones(len(X))])
        model = GaussianNaiveBayes(var_smoothing=1e-9).fit(X, y)
        assert np.all(np.isfinite(model.decision_function(X)))

    def test_single_class_raises(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        with pytest.raises(ValueError, match="both classes"):
            GaussianNaiveBayes().fit(X, np.ones(10, dtype=int))

    def test_unfitted_raises(self, blobs):
        X, _ = blobs
        with pytest.raises(RuntimeError, match="not fitted"):
            GaussianNaiveBayes().decision_function(X)

    def test_feature_mismatch_raises(self, blobs):
        X, y = blobs
        model = GaussianNaiveBayes().fit(X, y)
        with pytest.raises(ValueError, match="features"):
            model.decision_function(X[:, :2])

    def test_negative_smoothing_raises(self):
        with pytest.raises(ValueError):
            GaussianNaiveBayes(var_smoothing=-1.0)

    def test_robust_to_scale_differences(self):
        # NB is scale-equivariant per feature; a wildly scaled copy of a
        # feature should not destroy accuracy.
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 2))
        y = (X[:, 0] > 0).astype(int)
        X_scaled = X.copy()
        X_scaled[:, 0] *= 1e6
        acc = GaussianNaiveBayes().fit(X_scaled, y).score(X_scaled, y)
        assert acc > 0.95
