"""Tests for optimisers and learning-rate schedules."""

import numpy as np
import pytest

from repro.ml.optim import (
    Adagrad,
    ConstantLR,
    InverseScalingLR,
    MomentumSGD,
    SGD,
    StepDecayLR,
)


def quadratic_grad(x):
    """Gradient of f(x) = 0.5 ||x - 3||^2."""
    return x - 3.0


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s.rate(1) == s.rate(1000) == 0.1

    def test_inverse_scaling(self):
        s = InverseScalingLR(eta0=1.0, power=1.0)
        assert s.rate(1) == 1.0
        assert s.rate(10) == pytest.approx(0.1)

    def test_inverse_scaling_power(self):
        s = InverseScalingLR(eta0=1.0, power=0.5)
        assert s.rate(4) == pytest.approx(0.5)

    def test_step_decay(self):
        s = StepDecayLR(eta0=1.0, decay=0.5, step_size=10)
        assert s.rate(1) == 1.0
        assert s.rate(10) == 1.0
        assert s.rate(11) == 0.5
        assert s.rate(21) == 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            InverseScalingLR(power=0.0)
        with pytest.raises(ValueError):
            StepDecayLR(decay=1.5)
        with pytest.raises(ValueError):
            StepDecayLR(step_size=0)


class TestOptimizers:
    @pytest.mark.parametrize("opt", [
        SGD(ConstantLR(0.1)),
        MomentumSGD(ConstantLR(0.05), momentum=0.8),
        Adagrad(eta0=1.0),
    ])
    def test_converges_on_quadratic(self, opt):
        opt.reset()
        x = np.zeros(3)
        for _ in range(300):
            x = opt.step(x, quadratic_grad(x))
        np.testing.assert_allclose(x, 3.0, atol=0.15)

    def test_sgd_step_size_decays_with_schedule(self):
        opt = SGD(InverseScalingLR(1.0))
        x0 = np.array([10.0])
        x1 = opt.step(x0, np.array([1.0]))
        x2 = opt.step(x1, np.array([1.0]))
        assert abs(x0[0] - x1[0]) > abs(x1[0] - x2[0])

    def test_momentum_accumulates(self):
        opt = MomentumSGD(ConstantLR(0.1), momentum=0.9)
        x = np.array([0.0])
        g = np.array([1.0])
        step1 = opt.step(x, g)[0] - x[0]
        step2 = opt.step(x, g)[0] - x[0]
        assert abs(step2) > abs(step1)  # velocity builds up

    def test_adagrad_adapts_per_coordinate(self):
        opt = Adagrad(eta0=1.0)
        x = np.zeros(2)
        g = np.array([10.0, 0.1])
        x = opt.step(x, g)
        # Both coordinates move ~eta0 on the first step (normalised).
        assert abs(abs(x[0]) - abs(x[1])) < 0.2

    def test_reset_clears_state(self):
        opt = MomentumSGD(ConstantLR(0.1), momentum=0.9)
        opt.step(np.zeros(2), np.ones(2))
        opt.reset()
        assert opt._velocity is None

    def test_validation(self):
        with pytest.raises(ValueError):
            MomentumSGD(momentum=1.0)
        with pytest.raises(ValueError):
            Adagrad(eta0=0.0)
