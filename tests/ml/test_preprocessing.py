"""Tests for the feature scalers."""

import numpy as np
import pytest

from repro.ml.preprocessing import MinMaxScaler, RobustScaler, StandardScaler


@pytest.fixture
def X():
    rng = np.random.default_rng(0)
    base = rng.normal(5.0, 2.0, size=(100, 3))
    base[:, 2] = rng.pareto(1.5, 100) * 10  # heavy-tailed column
    return base


class TestStandardScaler:
    def test_zero_mean_unit_std(self, X):
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(Z.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_maps_to_zero(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        Z = StandardScaler().fit_transform(X)
        np.testing.assert_allclose(Z[:, 0], 0.0)

    def test_inverse_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_transform_uses_fit_statistics(self, X):
        scaler = StandardScaler().fit(X)
        Z_new = scaler.transform(X + 100.0)
        assert Z_new.mean() > 10  # not re-centred on the new data

    def test_unfitted_raises(self, X):
        with pytest.raises(RuntimeError, match="not fitted"):
            StandardScaler().transform(X)

    def test_feature_count_mismatch_raises(self, X):
        scaler = StandardScaler().fit(X)
        with pytest.raises(ValueError, match="features"):
            scaler.transform(X[:, :2])


class TestMinMaxScaler:
    def test_range(self, X):
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(Z.max(axis=0), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self, X):
        scaler = MinMaxScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X,
                                   rtol=1e-10)

    def test_constant_column(self):
        X = np.full((5, 1), 3.0)
        Z = MinMaxScaler().fit_transform(X)
        np.testing.assert_allclose(Z, 0.0)


class TestRobustScaler:
    def test_median_centred(self, X):
        Z = RobustScaler().fit_transform(X)
        np.testing.assert_allclose(np.median(Z, axis=0), 0.0, atol=1e-10)

    def test_outlier_resistance(self, X):
        contaminated = X.copy()
        contaminated[:5] *= 1000.0
        clean_scale = RobustScaler().fit(X).scale_
        dirty_scale = RobustScaler().fit(contaminated).scale_
        # 5 % contamination should barely move the IQR-based scale.
        np.testing.assert_allclose(dirty_scale, clean_scale, rtol=0.35)

    def test_inverse_roundtrip(self, X):
        scaler = RobustScaler().fit(X)
        np.testing.assert_allclose(scaler.inverse_transform(scaler.transform(X)), X,
                                   rtol=1e-10)

    def test_bad_quantiles_raise(self):
        with pytest.raises(ValueError):
            RobustScaler(q_low=80.0, q_high=20.0)
