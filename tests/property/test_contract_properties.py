"""Property-based tests on the attack/defence contracts.

Complements ``test_properties.py`` (which covers the game-theoretic
algebra) with randomised checks of the operational layer: filters
remove what they promise and nothing more, masks are monotone in their
strength parameters, and the attack-budget arithmetic is exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.attacks.base import attack_budget
from repro.attacks.optimal_boundary import OptimalBoundaryAttack
from repro.data.geometry import compute_centroid, distances_to_centroid
from repro.data.synthetic import make_gaussian_blobs
from repro.defenses.percentile_filter import PercentileFilter
from repro.defenses.radius_filter import RadiusFilter
from repro.defenses.slab_filter import SlabFilter


def dataset_strategy():
    """Small random blob datasets (seeded through hypothesis)."""
    return st.builds(
        lambda n, sep, seed: make_gaussian_blobs(
            n_samples=n, n_features=3, separation=sep, seed=seed
        ),
        n=st.integers(30, 120),
        sep=st.floats(0.5, 6.0),
        seed=st.integers(0, 10_000),
    )


class TestFilterProperties:
    @given(data=dataset_strategy(), fraction=st.floats(0.0, 0.8))
    @settings(max_examples=40, deadline=None)
    def test_percentile_filter_removes_at_most_promised(self, data, fraction):
        X, y = data
        mask = PercentileFilter(fraction).mask(X, y)
        removed = (~mask).sum()
        # class-survival guard can only *reduce* removals; quantile ties
        # can add at most a handful of extra keeps, never extra removals
        assert removed <= int(np.ceil(fraction * len(X))) + 1

    @given(data=dataset_strategy(),
           thetas=st.tuples(st.floats(0.1, 3.0), st.floats(3.0, 10.0)))
    @settings(max_examples=40, deadline=None)
    def test_radius_filter_monotone_in_theta(self, data, thetas):
        X, y = data
        small, large = sorted(thetas)
        keep_small = RadiusFilter(small).mask(X, y)
        keep_large = RadiusFilter(large).mask(X, y)
        # a looser filter keeps a superset (modulo the class guard,
        # which only ever re-admits the innermost member of a class)
        violations = keep_small & ~keep_large
        assert violations.sum() <= 2

    @given(data=dataset_strategy(), fraction=st.floats(0.0, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_slab_filter_budget(self, data, fraction):
        X, y = data
        mask = SlabFilter(fraction).mask(X, y)
        assert (~mask).sum() <= int(np.floor(fraction * len(X))) + 1

    @given(data=dataset_strategy())
    @settings(max_examples=30, deadline=None)
    def test_filters_never_empty_a_class(self, data):
        X, y = data
        for defense in (PercentileFilter(0.7), RadiusFilter(1e-6),
                        SlabFilter(0.7)):
            mask = defense.mask(X, y)
            assert set(np.unique(y[mask])) == set(np.unique(y))


class TestAttackProperties:
    @given(data=dataset_strategy(),
           percentile=st.floats(0.0, 0.9),
           n_poison=st.integers(1, 25),
           seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_boundary_attack_respects_radius(self, data, percentile, n_poison, seed):
        X, y = data
        attack = OptimalBoundaryAttack(percentile)
        X_p, y_p = attack.generate(X, y, n_poison, seed=seed)
        centroid = compute_centroid(X, method="median")
        budget = attack.placement_radius(X)
        d = distances_to_centroid(X_p, centroid)
        assert np.all(d <= budget * (1 + 1e-9))
        assert set(np.unique(np.asarray(y_p))) <= {-1, 1}

    @given(n_train=st.integers(1, 100_000), fraction=st.floats(0.0, 0.9))
    @settings(max_examples=80, deadline=None)
    def test_attack_budget_hits_target_contamination(self, n_train, fraction):
        n = attack_budget(n_train, fraction)
        assert n >= 0
        if n > 0:
            realised = n / (n_train + n)
            # rounding error of at most one point
            assert abs(realised - fraction) <= 1.0 / (n_train + n)
