"""Property-based tests (hypothesis) on the core invariants.

These cover the algebraic heart of the reproduction: the equalization
closed form, isotonic regression, the zero-sum LP, survival monotonicity
and the radius/percentile correspondence.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.game import PayoffCurves
from repro.core.mixed_strategy import MixedDefense, equalizing_probabilities
from repro.core.payoff_estimation import isotonic_regression
from repro.data.geometry import RadiusPercentileMap
from repro.gametheory.lp_solver import solve_zero_sum_lp
from repro.gametheory.matrix_game import MatrixGame
from repro.utils.validation import check_probability_vector


# -- strategies ------------------------------------------------------------

def support_strategy(min_size=2, max_size=6):
    """Sorted, well-separated percentile supports in (0, 0.9]."""
    return st.lists(
        st.floats(0.01, 0.9), min_size=min_size, max_size=max_size, unique=True
    ).map(sorted).filter(lambda xs: min(np.diff(xs), default=1.0) > 1e-3).map(np.array)


def decreasing_E_strategy():
    """Random strictly positive, strictly decreasing E curves."""
    return st.tuples(
        st.floats(0.01, 10.0),   # scale
        st.floats(0.1, 20.0),    # decay rate
    ).map(lambda t: (lambda p, s=t[0], k=t[1]: s * np.exp(-k * p)))


# -- equalization ----------------------------------------------------------

class TestEqualizationProperties:
    @given(support=support_strategy(), curve=decreasing_E_strategy())
    @settings(max_examples=60, deadline=None)
    def test_equalizing_probabilities_are_valid_and_equalize(self, support, curve):
        curves = PayoffCurves(E=curve, gamma=lambda p: 0.0, p_max=0.95)
        probs = equalizing_probabilities(support, curves)
        check_probability_vector(probs)
        defense = MixedDefense(percentiles=support, probabilities=probs)
        values = curves.E_vec(support) * defense.survival_vector()
        assert np.allclose(values, values[0], rtol=1e-8)

    @given(support=support_strategy(), curve=decreasing_E_strategy())
    @settings(max_examples=60, deadline=None)
    def test_supported_placements_are_attacker_optimal(self, support, curve):
        """No placement anywhere beats the supported ones (NE property)."""
        curves = PayoffCurves(E=curve, gamma=lambda p: 0.0, p_max=0.95)
        defense = MixedDefense.equalized(support, curves)
        equalized = defense.attacker_value_at(float(support[0]), curves)
        for p in np.linspace(0.0, 0.95, 97):
            assert defense.attacker_value_at(float(p), curves) <= equalized + 1e-9

    @given(support=support_strategy(min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_survival_probability_monotone(self, support):
        rng = np.random.default_rng(0)
        probs = rng.dirichlet(np.ones(len(support)))
        defense = MixedDefense(percentiles=support, probabilities=probs)
        ps = np.linspace(0, 1, 53)
        surv = [defense.survival_probability(float(p)) for p in ps]
        assert all(a <= b + 1e-12 for a, b in zip(surv, surv[1:]))
        assert surv[-1] == pytest.approx(1.0)


# -- isotonic regression ---------------------------------------------------

class TestIsotonicProperties:
    @given(hnp.arrays(np.float64, st.integers(1, 40),
                      elements=st.floats(-100, 100)))
    @settings(max_examples=80, deadline=None)
    def test_output_monotone(self, y):
        out = isotonic_regression(y)
        assert np.all(np.diff(out) >= -1e-9)

    @given(hnp.arrays(np.float64, st.integers(1, 40),
                      elements=st.floats(-100, 100)))
    @settings(max_examples=80, deadline=None)
    def test_mean_preserved(self, y):
        out = isotonic_regression(y)
        assert out.mean() == pytest.approx(y.mean(), abs=1e-8)

    @given(hnp.arrays(np.float64, st.integers(1, 40),
                      elements=st.floats(-100, 100)))
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, y):
        once = isotonic_regression(y)
        twice = isotonic_regression(once)
        np.testing.assert_allclose(twice, once, atol=1e-9)

    @given(hnp.arrays(np.float64, st.integers(1, 30),
                      elements=st.floats(-50, 50)))
    @settings(max_examples=50, deadline=None)
    def test_decreasing_is_reflected_increasing(self, y):
        dec = isotonic_regression(y, increasing=False)
        inc = -isotonic_regression(-y, increasing=True)
        np.testing.assert_allclose(dec, inc, atol=1e-9)


# -- zero-sum LP -----------------------------------------------------------

class TestLPProperties:
    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 6), st.integers(2, 6)),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=40, deadline=None)
    def test_solution_unexploitable(self, A):
        sol = solve_zero_sum_lp(A)
        game = MatrixGame(A)
        assert game.exploitability(sol.row_strategy, sol.col_strategy) < 1e-6

    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(2, 5)),
                      elements=st.floats(-5, 5)))
    @settings(max_examples=40, deadline=None)
    def test_value_between_maximin_and_minimax(self, A):
        sol = solve_zero_sum_lp(A)
        game = MatrixGame(A)
        _, lower = game.maximin_pure()
        _, upper = game.minimax_pure()
        assert lower - 1e-8 <= sol.value <= upper + 1e-8

    @given(hnp.arrays(np.float64, st.tuples(st.integers(2, 5), st.integers(2, 5)),
                      elements=st.floats(-5, 5)),
           st.floats(-3, 3))
    @settings(max_examples=30, deadline=None)
    def test_value_shifts_with_constant(self, A, c):
        base = solve_zero_sum_lp(A).value
        shifted = solve_zero_sum_lp(A + c).value
        assert shifted == pytest.approx(base + c, abs=1e-6)


# -- geometry --------------------------------------------------------------

class TestGeometryProperties:
    @given(hnp.arrays(np.float64, st.integers(5, 200),
                      elements=st.floats(0.0, 1e6)))
    @settings(max_examples=60, deadline=None)
    def test_radius_monotone_in_percentile(self, distances):
        rmap = RadiusPercentileMap(distances)
        ps = np.linspace(0, 1, 11)
        radii = rmap.radii(ps)
        assert np.all(np.diff(radii) <= 1e-9)

    @given(hnp.arrays(np.float64, st.integers(5, 200),
                      elements=st.floats(0.0, 1e6)),
           st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_percentile_of_radius_bounded(self, distances, p):
        rmap = RadiusPercentileMap(distances)
        r = rmap.radius(p)
        # removing everything farther than the p-quantile radius removes
        # at most fraction p of points, up to one quantile-interpolation
        # step of discretisation slack
        assert rmap.percentile(r) <= p + 1.0 / len(distances) + 1e-9
