"""Unit tests for the resilience layer: fault plans, retry, config."""

import math

import pytest

from repro.resilience import (
    FAULT_POINTS,
    InjectedFault,
    RetryPolicy,
    env_bool,
    env_float,
    env_int,
    parse_fault_plan,
)
from repro.resilience import faults


class TestParse:
    def test_empty_and_none_mean_no_plan(self):
        assert parse_fault_plan(None) is None
        assert parse_fault_plan("") is None
        assert parse_fault_plan("  ;  ") is None

    def test_full_spec_round_trips(self):
        plan = parse_fault_plan(
            "connect:fail_prob=0.3;chunk_reply:delay_ms=500;"
            "shard:crash_after_rounds=40;seed=7")
        assert plan.seed == 7
        assert plan.rules["connect"].fail_prob == 0.3
        assert plan.rules["chunk_reply"].delay_ms == 500.0
        assert plan.rules["shard"].crash_after_rounds == 40
        assert plan.crash_threshold("shard") == 40
        # describe() is itself a parseable spec
        again = parse_fault_plan(plan.describe())
        assert again.rules.keys() == plan.rules.keys()
        assert again.seed == plan.seed

    def test_multiple_knobs_one_rule(self):
        plan = parse_fault_plan("handshake:fail_first=2,delay_ms=1.5")
        rule = plan.rules["handshake"]
        assert rule.fail_first == 2
        assert rule.delay_ms == 1.5

    def test_unknown_point_names_the_known_ones(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            parse_fault_plan("warp_core:fail_prob=1")
        with pytest.raises(ValueError, match="connect"):
            parse_fault_plan("warp_core:fail_prob=1")

    def test_unhonoured_knob_is_refused(self):
        # connect never consults drop_prob: arming it would test nothing
        with pytest.raises(ValueError, match="does not honour"):
            parse_fault_plan("connect:drop_prob=0.5")
        with pytest.raises(ValueError, match="does not honour"):
            parse_fault_plan("chunk_reply:fail_prob=0.5")

    def test_out_of_range_values_are_refused(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            parse_fault_plan("connect:fail_prob=1.5")
        with pytest.raises(ValueError, match=">= 0"):
            parse_fault_plan("chunk_reply:delay_ms=-1")
        with pytest.raises(ValueError, match=">= 0"):
            parse_fault_plan("connect:fail_first=-2")
        with pytest.raises(ValueError, match="expected a number"):
            parse_fault_plan("connect:fail_prob=lots")
        with pytest.raises(ValueError, match="expected an integer"):
            parse_fault_plan("shard:crash_after_rounds=soon")

    def test_malformed_tokens_are_refused(self):
        with pytest.raises(ValueError, match="bad fault rule"):
            parse_fault_plan("justaword")
        with pytest.raises(ValueError, match="expected knob=value"):
            parse_fault_plan("connect:fail_prob")


class TestDeterminism:
    def _decisions(self, spec, n=64):
        plan = parse_fault_plan(spec)
        out = []
        for _ in range(n):
            try:
                out.append("drop" if plan.fire("connect") else "ok")
            except InjectedFault:
                out.append("fail")
        return out

    def test_same_plan_same_sequence(self):
        spec = "connect:fail_prob=0.4;seed=13"
        assert self._decisions(spec) == self._decisions(spec)

    def test_seed_changes_the_sequence(self):
        a = self._decisions("connect:fail_prob=0.4;seed=13")
        b = self._decisions("connect:fail_prob=0.4;seed=14")
        assert a != b

    def test_fail_first_fails_exactly_the_first_n(self):
        plan = parse_fault_plan("connect:fail_first=3")
        for _ in range(3):
            with pytest.raises(InjectedFault):
                plan.fire("connect")
        for _ in range(10):
            assert plan.fire("connect") is False

    def test_drop_first_drops_exactly_the_first_n(self):
        plan = parse_fault_plan("chunk_reply:drop_first=2")
        assert plan.fire("chunk_reply") is True
        assert plan.fire("chunk_reply") is True
        assert plan.fire("chunk_reply") is False

    def test_points_count_independently(self):
        plan = parse_fault_plan("connect:fail_first=1;handshake:fail_first=1")
        with pytest.raises(InjectedFault):
            plan.fire("connect")
        with pytest.raises(InjectedFault):
            plan.fire("handshake")
        assert plan.fire("connect") is False
        assert plan.fire("handshake") is False

    def test_fail_prob_rate_roughly_matches(self):
        plan = parse_fault_plan("connect:fail_prob=0.3;seed=5")
        fails = 0
        for _ in range(400):
            try:
                plan.fire("connect")
            except InjectedFault:
                fails += 1
        assert 0.2 < fails / 400 < 0.4


class TestProcessWidePlan:
    def test_fire_is_a_noop_with_no_plan(self):
        faults.install(None)
        assert faults.active_plan() is None
        assert faults.fire("connect") is False
        assert faults.crash_threshold() is None

    def test_install_accepts_spec_strings(self):
        try:
            plan = faults.install("shard:crash_after_rounds=5")
            assert faults.active_plan() is plan
            assert faults.crash_threshold() == 5
        finally:
            faults.install(None)

    def test_every_point_in_the_table_is_armable(self):
        for point, knobs in FAULT_POINTS.items():
            spec = f"{point}:{knobs[0]}=0"
            assert parse_fault_plan(spec).rules[point].point == point


class TestRetryPolicy:
    def test_exponential_and_capped(self):
        policy = RetryPolicy(retries=6, backoff=0.1, max_backoff=0.5,
                             jitter=0.0)
        delays = list(policy.delays("k"))
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5, 0.5]

    def test_deterministic_jitter(self):
        policy = RetryPolicy(retries=4, jitter=0.5)
        assert list(policy.delays("a")) == list(policy.delays("a"))
        assert list(policy.delays("a")) != list(policy.delays("b"))

    def test_jitter_stays_in_band(self):
        policy = RetryPolicy(retries=50, backoff=1.0, max_backoff=1.0,
                             jitter=0.25)
        for delay in policy.delays("band"):
            assert 0.75 <= delay <= 1.25

    def test_zero_retries_yields_nothing(self):
        assert list(RetryPolicy(retries=0).delays()) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)


class TestEnvConfig:
    def test_defaults_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        assert env_float("REPRO_TEST_KNOB", 2.5) == 2.5
        assert env_int("REPRO_TEST_KNOB", 7) == 7
        assert env_bool("REPRO_TEST_KNOB", True) is True

    def test_parse_errors_name_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "2m")
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            env_float("REPRO_TEST_KNOB", 1.0)
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            env_int("REPRO_TEST_KNOB", 1)
        with pytest.raises(ValueError, match="REPRO_TEST_KNOB"):
            env_bool("REPRO_TEST_KNOB", True)

    def test_nan_is_not_a_number(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "nan")
        with pytest.raises(ValueError, match="expected a number"):
            env_float("REPRO_TEST_KNOB", 1.0)

    def test_clamping_is_silent(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        assert env_int("REPRO_TEST_KNOB", 4, lo=1, hi=10) == 1
        monkeypatch.setenv("REPRO_TEST_KNOB", "1e9")
        assert env_float("REPRO_TEST_KNOB", 1.0, lo=0.0, hi=3600.0) == 3600.0

    def test_bool_tokens(self, monkeypatch):
        for token, expected in (("1", True), ("true", True), ("ON", True),
                                ("0", False), ("no", False), ("off", False)):
            monkeypatch.setenv("REPRO_TEST_KNOB", token)
            assert env_bool("REPRO_TEST_KNOB", not expected) is expected


class TestBackendKnobValidation:
    """The cluster backend reads its env knobs through the validators."""

    def test_bad_timeout_fails_at_construction(self, monkeypatch):
        from repro.cluster.backend import ClusterBackend

        monkeypatch.setenv("REPRO_CLUSTER_TIMEOUT", "2m")
        with pytest.raises(ValueError, match="REPRO_CLUSTER_TIMEOUT"):
            ClusterBackend()

    def test_min_chunk_is_clamped_sane(self, monkeypatch):
        from repro.cluster.backend import ClusterBackend

        monkeypatch.setenv("REPRO_CLUSTER_MIN_CHUNK", "0")
        monkeypatch.setenv("REPRO_CLUSTER_MAX_CHUNK", "1000000")
        backend = ClusterBackend()
        assert backend.min_chunk == 1
        assert backend.max_chunk == 8192

    def test_max_chunk_never_below_min_chunk(self, monkeypatch):
        from repro.cluster.backend import ClusterBackend

        monkeypatch.setenv("REPRO_CLUSTER_MIN_CHUNK", "32")
        monkeypatch.setenv("REPRO_CLUSTER_MAX_CHUNK", "2")
        backend = ClusterBackend()
        assert backend.max_chunk >= backend.min_chunk

    def test_bad_fallback_flag_names_itself(self, monkeypatch):
        from repro.cluster.backend import ClusterBackend

        monkeypatch.setenv("REPRO_CLUSTER_FALLBACK", "maybe")
        with pytest.raises(ValueError, match="REPRO_CLUSTER_FALLBACK"):
            ClusterBackend()

    def test_retry_knobs_feed_the_policy(self, monkeypatch):
        from repro.cluster.backend import ClusterBackend

        monkeypatch.setenv("REPRO_CLUSTER_RETRIES", "7")
        monkeypatch.setenv("REPRO_CLUSTER_BACKOFF", "0.2")
        backend = ClusterBackend()
        assert backend.retry_policy.retries == 7
        assert math.isclose(backend.retry_policy.backoff, 0.2)
