"""Fixtures for the service tier: tiny studies, an in-process service.

Everything runs in-process (the HTTP listener binds a free loopback
port; scheduler workers are threads), so the tests exercise the exact
code paths of ``repro serve`` without subprocess plumbing — the same
trick the cluster tests' shard farm uses.
"""

import http.client
import json

import pytest

from repro.service import ReproService, ServiceConfig
from repro.study import ContextSpec, studies


@pytest.fixture(scope="session")
def ctx_spec():
    """A declarative context: small synthetic task, fast to materialise."""
    return ContextSpec(name="synthetic", seed=0, n_samples=260,
                       params={"n_features": 4})


@pytest.fixture()
def tiny_spec(ctx_spec):
    """A two-round figure1 study — the smallest real study to queue."""
    return studies.figure1(context=ctx_spec, percentiles=(0.05, 0.1),
                           n_repeats=1)


@pytest.fixture(scope="session")
def spec_maker(ctx_spec):
    """Builds distinct-fingerprint variants of the tiny study."""

    def make(*, seed_offset=0, percentiles=(0.05, 0.1)):
        context = ContextSpec(name=ctx_spec.name,
                              seed=ctx_spec.seed + seed_offset,
                              n_samples=ctx_spec.n_samples,
                              params=dict(ctx_spec.params))
        return studies.figure1(context=context, percentiles=percentiles,
                               n_repeats=1)

    return make


@pytest.fixture()
def service(tmp_path):
    """A running service over a fresh archive dir (stopped afterwards)."""
    svc = ReproService(ServiceConfig(
        archive_dir=str(tmp_path / "archive"), poll_interval=0.05,
        lease_ttl=5.0, retries=1, backoff=0.01)).start()
    yield svc
    svc.stop()


class Client:
    """A tiny one-request-per-connection HTTP client for the tests."""

    def __init__(self, host, port, *, token=None):
        self.host = host
        self.port = port
        self.token = token

    def request(self, method, path, body=None, *, headers=None,
                timeout=60.0):
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        sent = dict(headers or {})
        if self.token is not None and "Authorization" not in sent:
            sent["Authorization"] = f"Bearer {self.token}"
        if isinstance(body, (dict, list)):
            body = json.dumps(body)
        try:
            conn.request(method, path, body=body, headers=sent)
            resp = conn.getresponse()
            data = resp.read()
        finally:
            conn.close()
        return resp.status, data

    def json(self, method, path, body=None, **kwargs):
        status, data = self.request(method, path, body, **kwargs)
        return status, json.loads(data)

    def stream_lines(self, path, *, timeout=120.0):
        """Collect the chunked NDJSON events of a /stream response."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=timeout)
        headers = {}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        events = []
        try:
            conn.request("GET", path, headers=headers)
            resp = conn.getresponse()
            status = resp.status
            while True:
                line = resp.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    events.append(json.loads(line))
        finally:
            conn.close()
        return status, events


@pytest.fixture()
def client(service):
    return Client(service.host, service.port)


@pytest.fixture(scope="session")
def client_class():
    """The Client helper, for tests that talk to their own service."""
    return Client
