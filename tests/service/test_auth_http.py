"""Bearer-token auth and the HTTP transport's own behaviour."""

import json

import pytest

from repro.service import AuthPolicy, ReproService, ServiceConfig


@pytest.fixture()
def locked_service(tmp_path):
    svc = ReproService(ServiceConfig(
        archive_dir=str(tmp_path / "archive"), token="s3cret",
        poll_interval=0.05), workers=0).start()
    yield svc
    svc.stop()


def test_auth_policy_named_refusals():
    policy = AuthPolicy("tok")
    assert policy.enabled
    assert policy.refusal("Bearer tok") is None
    assert "auth required" in policy.refusal(None)
    assert "REPRO_SERVICE_TOKEN" in policy.refusal(None)
    assert "auth malformed" in policy.refusal("Basic dXNlcg==")
    assert "auth failed" in policy.refusal("Bearer wrong")

    open_policy = AuthPolicy(None)
    assert not open_policy.enabled
    assert open_policy.refusal(None) is None
    assert "auth mismatch" in open_policy.refusal("Bearer whatever")


def test_auth_matrix_missing_wrong_valid(locked_service, client_class):
    """Missing / wrong / valid token → 401 / 401 / 200, named bodies."""
    host, port = locked_service.host, locked_service.port

    status, body = client_class(host, port).json("GET", "/health")
    assert status == 401
    assert "auth required" in body["error"]
    assert "REPRO_SERVICE_TOKEN" in body["error"]

    status, body = client_class(host, port, token="wrong").json("GET", "/health")
    assert status == 401
    assert "auth failed" in body["error"]

    status, body = client_class(host, port, token="s3cret").json("GET", "/health")
    assert status == 200
    assert body["status"] == "ok"
    assert body["auth"] is True


def test_auth_guards_every_route(locked_service, client_class):
    client = client_class(locked_service.host, locked_service.port)
    fp = "0" * 64
    for method, path in (("POST", "/studies"),
                         ("GET", f"/studies/{fp}"),
                         ("GET", f"/studies/{fp}/stream"),
                         ("GET", f"/studies/{fp}/result"),
                         ("GET", f"/studies/{fp}/report"),
                         ("GET", "/queue"),
                         ("GET", "/health")):
        status, body = client.json(method, path, body="{}")
        assert status == 401, (method, path)
        assert "auth" in body["error"], (method, path)


def test_unknown_route_404_and_wrong_method_405(client):
    status, body = client.json("GET", "/nope")
    assert status == 404
    assert "no route" in body["error"]
    status, body = client.json("POST", "/health")
    assert status == 405
    status, body = client.json("GET", "/studies")
    assert status == 405


def test_bad_json_body_is_a_named_400(client):
    status, body = client.json("POST", "/studies", body="not json{{")
    assert status == 400
    assert "not valid JSON" in body["error"]
    status, body = client.json("POST", "/studies", body=json.dumps([1, 2]))
    assert status == 400
    assert "JSON object" in body["error"]
    status, body = client.json("POST", "/studies",
                               body=json.dumps({"type": "Wrong"}))
    assert status == 400
    assert "StudySpec" in body["error"]


def test_submit_refuses_contextless_spec(client, tiny_spec):
    doc = tiny_spec.to_obj()
    doc.pop("context", None)
    status, body = client.json("POST", "/studies", body=doc)
    assert status == 400
    assert "context" in body["error"]


def test_status_of_unknown_study_is_404(client):
    status, body = client.json("GET", "/studies/" + "a" * 64)
    assert status == 404
    assert "unknown study" in body["error"]


def test_oversized_body_is_rejected(client):
    status, body = client.request(
        "POST", "/studies", body=b"x",
        headers={"Content-Length": str(64 * 1024 * 1024)})
    assert status == 413
