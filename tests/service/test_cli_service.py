"""The operator CLI surface: repro-queue, archive ls, serve lifecycle."""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.cli import main
from repro.service import StudyQueue
from repro.study import run_study


# -- repro archive ls --------------------------------------------------------


def test_archive_ls_lists_studies(tmp_path, tiny_spec, capsys):
    run_study(tiny_spec, archive_dir=str(tmp_path))
    assert main(["archive", "ls", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert tiny_spec.fingerprint()[:16] in out
    assert "figure1" in out
    assert "1 archived study" in out


def test_archive_ls_empty_and_missing_dir(tmp_path, capsys):
    assert main(["archive", "ls", str(tmp_path)]) == 0
    assert "no archived studies" in capsys.readouterr().out
    with pytest.raises(SystemExit, match="no such archive directory"):
        main(["archive", "ls", str(tmp_path / "nope")])


def test_archive_ls_skips_foreign_files(tmp_path, tiny_spec, capsys):
    run_study(tiny_spec, archive_dir=str(tmp_path))
    (tmp_path / "study-deadbeef.json").write_text("not json")
    with pytest.warns(UserWarning, match="skipping"):
        assert main(["archive", "ls", str(tmp_path)]) == 0
    assert "1 archived study" in capsys.readouterr().out


# -- repro-queue -------------------------------------------------------------


def test_queue_list_show_cancel_nudge(tmp_path, tiny_spec, capsys):
    queue = StudyQueue(str(tmp_path))
    queue.submit(tiny_spec)
    fp = tiny_spec.fingerprint()
    dash = ["--archive-dir", str(tmp_path)]

    assert main(["repro-queue", "list"] + dash) == 0
    out = capsys.readouterr().out
    assert fp[:16] in out and "queued" in out and "queued=1" in out

    # show accepts any unambiguous prefix and dumps the full state.
    assert main(["repro-queue", "show", fp[:10]] + dash) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["status"]["state"] == "queued"
    assert doc["entry"]["fingerprint"] == fp

    assert main(["repro-queue", "cancel", fp[:10]] + dash) == 0
    assert "cancelled" in capsys.readouterr().out
    assert queue.get(fp).state == "cancelled"

    assert main(["repro-queue", "nudge", fp[:10], "--priority", "5"]
                + dash) == 0
    assert "requeued" in capsys.readouterr().out
    entry = queue.get(fp)
    assert entry.state == "queued" and entry.priority == 5


def test_queue_errors_are_named(tmp_path, tiny_spec):
    dash = ["--archive-dir", str(tmp_path)]
    with pytest.raises(SystemExit, match="needs a study fingerprint"):
        main(["repro-queue", "show"] + dash)
    with pytest.raises(SystemExit, match="no queue entry matches"):
        main(["repro-queue", "show", "feedface"] + dash)
    queue = StudyQueue(str(tmp_path))
    queue.submit(tiny_spec)
    fp = tiny_spec.fingerprint()
    queue.acquire_lease(fp, owner="w1")
    with pytest.raises(SystemExit, match="leased"):
        main(["repro-queue", "cancel", fp[:10]] + dash)
    with pytest.raises(SystemExit, match="not waiting"):
        queue.release_lease(fp)
        entry = queue.get(fp)
        entry.state = "failed"
        queue.update(entry)
        main(["repro-queue", "cancel", fp[:10]] + dash)


def test_queue_list_empty(tmp_path, capsys):
    assert main(["repro-queue", "list", "--archive-dir",
                 str(tmp_path)]) == 0
    assert "queue is empty" in capsys.readouterr().out


# -- repro serve -------------------------------------------------------------


def test_serve_rejects_bad_config(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_PORT", "not-a-port")
    with pytest.raises(SystemExit, match="REPRO_SERVICE_PORT"):
        main(["serve", "--archive-dir", str(tmp_path)])
    monkeypatch.delenv("REPRO_SERVICE_PORT")
    with pytest.raises(SystemExit, match="--workers"):
        main(["serve", "--archive-dir", str(tmp_path), "--workers", "-1"])


@pytest.mark.slow
def test_serve_sigterm_graceful_exit_zero(tmp_path):
    """`repro serve` under SIGTERM: announces READY, drains, exits 0."""
    env = dict(os.environ, PYTHONPATH="src", PYTHONUNBUFFERED="1")
    env.pop("REPRO_SERVICE_TOKEN", None)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--archive-dir", str(tmp_path / "archive"), "--port", "0",
         "--no-progress"],
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))),
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    try:
        ready = None
        deadline = time.time() + 60
        while time.time() < deadline:
            line = proc.stdout.readline()
            if line.startswith("READY"):
                ready = line
                break
        assert ready is not None, "service never announced READY"
        assert "auth=off" in ready
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        assert code == 0
        # The shutdown flushed the queue manifest (satellite contract).
        manifest = (tmp_path / "archive" / "queue"
                    / "queue-manifest.json")
        assert manifest.exists()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
