"""StudyQueue: entries, leases, ordering, crash tolerance."""

import json
import os
import threading

import pytest

from repro.service import StudyQueue
from repro.service.queue import entry_path, lease_path


def test_submit_creates_entry_and_dedupes(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, created = queue.submit(tiny_spec)
    assert created
    assert entry.fingerprint == tiny_spec.fingerprint()
    assert entry.state == "queued"
    assert os.path.exists(entry_path(str(tmp_path), entry.fingerprint))

    again, created = queue.submit(tiny_spec, priority=99)
    assert not created
    # The original entry wins: the duplicate's priority is ignored.
    assert again.priority == entry.priority
    assert len(queue.entries()) == 1


def test_submit_refuses_live_context(tmp_path, tiny_spec):
    from dataclasses import replace

    queue = StudyQueue(str(tmp_path))
    with pytest.raises(ValueError, match="context=None"):
        queue.submit(replace(tiny_spec, context=None))


def test_concurrent_submit_one_entry(tmp_path, spec_maker):
    """Many threads racing to submit the same spec create one entry."""
    queue = StudyQueue(str(tmp_path))
    spec = spec_maker()
    outcomes = []
    barrier = threading.Barrier(8)

    def submit():
        barrier.wait()
        _, created = StudyQueue(str(tmp_path)).submit(spec)
        outcomes.append(created)

    threads = [threading.Thread(target=submit) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert outcomes.count(True) == 1
    assert len(queue.entries()) == 1


def test_dequeue_order_priority_then_fifo(tmp_path, spec_maker):
    queue = StudyQueue(str(tmp_path))
    low = spec_maker(seed_offset=1)
    mid = spec_maker(seed_offset=2)
    high = spec_maker(seed_offset=3)
    queue.submit(low, priority=0)
    queue.submit(high, priority=5)
    queue.submit(mid, priority=0)
    ordered = [e.fingerprint for e in queue.pending()]
    assert ordered == [high.fingerprint(), low.fingerprint(),
                       mid.fingerprint()]
    assert queue.position(high.fingerprint()) == 1
    assert queue.position(mid.fingerprint()) == 3


def test_not_before_defers_eligibility(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    entry.not_before = 10_000.0
    queue.update(entry)
    assert queue.pending(now=9_999.0) == []
    assert [e.fingerprint for e in queue.pending(now=10_001.0)] == \
        [entry.fingerprint]


def test_lease_is_exclusive_and_releases(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    fp = entry.fingerprint
    assert queue.acquire_lease(fp, owner="w1")
    assert not queue.acquire_lease(fp, owner="w2")
    info = queue.lease_info(fp)
    assert info["owner"] == "w1"
    queue.release_lease(fp)
    assert queue.lease_info(fp) is None
    assert queue.acquire_lease(fp, owner="w2")


def test_heartbeat_updates_progress(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    queue.acquire_lease(entry.fingerprint, owner="w1")
    queue.heartbeat(entry.fingerprint, done=3, total=9, owner="w1")
    state = queue.study_state(entry.fingerprint)
    assert state["state"] == "running"
    assert state["progress"] == {"done": 3, "total": 9}


def test_reap_stale_lease_requeues(tmp_path, tiny_spec, recwarn):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    fp = entry.fingerprint
    queue.acquire_lease(fp, owner="dead-daemon")
    # A fresh heartbeat survives the reaper...
    assert queue.reap_stale_leases(ttl=60.0) == []
    # ...but one older than the TTL is broken and the study requeues.
    with pytest.warns(UserWarning, match="reaped stale lease"):
        reclaimed = queue.reap_stale_leases(ttl=0.0)
    assert reclaimed == [fp]
    assert queue.lease_info(fp) is None
    assert queue.study_state(fp)["state"] == "queued"


def test_cancel_refuses_leased(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    queue.acquire_lease(entry.fingerprint, owner="w1")
    with pytest.raises(ValueError, match="leased"):
        queue.cancel(entry.fingerprint)
    queue.release_lease(entry.fingerprint)
    assert queue.cancel(entry.fingerprint).state == "cancelled"


def test_nudge_requeues_failed(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    entry.state = "failed"
    entry.last_error = "boom"
    entry.not_before = 10**12
    queue.update(entry)
    nudged = queue.nudge(entry.fingerprint, priority=7)
    assert nudged.state == "queued"
    assert nudged.not_before == 0.0
    assert nudged.last_error is None
    assert nudged.priority == 7
    assert queue.pending()  # eligible right now


def test_torn_entry_is_tolerated(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    path = entry_path(str(tmp_path), "deadbeef")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write('{"type": "StudyQueueEntry", "fingerpr')  # torn write
    with pytest.warns(UserWarning, match="unreadable queue entry"):
        entries = queue.entries()
    assert [e.fingerprint for e in entries] == [entry.fingerprint]


def test_newer_schema_entry_is_skipped(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    doc = entry.to_obj()
    doc["schema"] = 999
    with open(entry_path(str(tmp_path), entry.fingerprint), "w",
              encoding="utf-8") as fh:
        json.dump(doc, fh)
    with pytest.warns(UserWarning, match="newer than this build"):
        assert queue.entries() == []


def test_manifest_rolls_up_counts(tmp_path, spec_maker):
    queue = StudyQueue(str(tmp_path))
    queue.submit(spec_maker(seed_offset=1))
    queue.submit(spec_maker(seed_offset=2))
    with open(os.path.join(str(tmp_path), "queue",
                           "queue-manifest.json"),
              encoding="utf-8") as fh:
        manifest = json.load(fh)
    assert manifest["type"] == "StudyQueueManifest"
    assert manifest["counts"]["queued"] == 2


def test_study_state_resolution(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    fp = tiny_spec.fingerprint()
    assert queue.study_state(fp) is None
    queue.submit(tiny_spec)
    assert queue.study_state(fp)["state"] == "queued"
    queue.acquire_lease(fp, owner="w1")
    assert queue.study_state(fp)["state"] == "running"
    # The archive outranks everything.
    from repro.study import archive_path
    with open(archive_path(str(tmp_path), fp), "w",
              encoding="utf-8") as fh:
        fh.write("{}")
    assert queue.study_state(fp)["state"] == "done"
    assert lease_path(str(tmp_path), fp)  # paths stay stable for ops
