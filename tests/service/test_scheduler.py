"""SchedulerWorker: lease-and-run, retry/backoff, interrupt, resume."""

import time

import pytest

from repro.engine import EvaluationEngine
from repro.service import (SchedulerWorker, ServiceConfig, StudyInterrupted,
                           StudyQueue)
from repro.study import (ContextSpec, describe_study, load_checkpoint,
                         run_study, studies)


def _config(tmp_path, **overrides):
    values = dict(archive_dir=str(tmp_path), poll_interval=0.02,
                  lease_ttl=5.0, retries=1, backoff=0.01,
                  checkpoint_every=1)
    values.update(overrides)
    return ServiceConfig(**values)


def _wait(predicate, timeout=60.0, message="condition"):
    deadline = time.time() + timeout
    while time.time() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


def test_worker_runs_queued_study_to_archive(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    queue.submit(tiny_spec)
    engine = EvaluationEngine("serial")
    worker = SchedulerWorker(queue, _config(tmp_path), engine=engine)
    worker.start()
    try:
        fp = tiny_spec.fingerprint()
        _wait(lambda: (queue.study_state(fp) or {}).get("state") == "done",
              message="study archived")
    finally:
        worker.stop()
        worker.join(timeout=30.0)
    assert worker.studies_completed == 1
    assert queue.get(tiny_spec.fingerprint()) is None  # entry removed
    # The archived result is the real study, resumable by fingerprint.
    served = run_study(tiny_spec, archive_dir=str(tmp_path))
    assert served.study_fingerprint == tiny_spec.fingerprint()


def test_failure_requeues_with_backoff_then_parks_failed(tmp_path):
    bad_ctx = ContextSpec(name="no-such-context", seed=0)
    spec = studies.figure1(context=bad_ctx, percentiles=(0.05,),
                           n_repeats=1)
    queue = StudyQueue(str(tmp_path))
    queue.submit(spec)
    worker = SchedulerWorker(queue, _config(tmp_path, retries=1,
                                            backoff=0.01))
    worker.start()
    try:
        fp = spec.fingerprint()
        _wait(lambda: (queue.get(fp) or spec).state == "failed",
              message="retry budget exhausted")
    finally:
        worker.stop()
        worker.join(timeout=30.0)
    entry = queue.get(spec.fingerprint())
    assert entry.state == "failed"
    assert entry.attempts == 2  # the first try + one retry
    assert "unknown context" in entry.last_error
    assert worker.studies_failed == 1


def test_malformed_entry_parks_failed_without_retries(tmp_path, tiny_spec):
    queue = StudyQueue(str(tmp_path))
    entry, _ = queue.submit(tiny_spec)
    entry.study = {"type": "StudySpec", "kind": "no-such-kind"}
    queue.update(entry)
    worker = SchedulerWorker(queue, _config(tmp_path))
    worker.start()
    try:
        fp = entry.fingerprint
        _wait(lambda: (queue.get(fp) or entry).state == "failed",
              message="malformed entry parked")
    finally:
        worker.stop()
        worker.join(timeout=30.0)
    parked = queue.get(entry.fingerprint)
    assert parked.attempts == 0  # never retried: it can never load
    assert "StudySpec" in parked.last_error


def test_interrupt_checkpoints_and_resumes_zero_recompute(tmp_path,
                                                          ctx_spec):
    """The graceful-shutdown contract, end to end: a study aborted
    mid-run keeps every completed round in its checkpoint, and the
    next engine recomputes exactly the remainder."""
    spec = studies.figure1(
        context=ctx_spec,
        percentiles=(0.02, 0.04, 0.06, 0.08, 0.10, 0.12), n_repeats=1)
    total = describe_study(spec).n_rounds
    assert total >= 6

    stop_after = 3
    seen = []

    def progress(done, total_):
        seen.append(done)
        if done >= stop_after:
            raise StudyInterrupted("drill")

    first = EvaluationEngine("serial")
    with pytest.raises(StudyInterrupted):
        run_study(spec, engine=first, progress=progress,
                  archive_dir=str(tmp_path), resume=True,
                  checkpoint_every=1)
    rows = load_checkpoint(str(tmp_path), spec.fingerprint())
    assert len(rows) >= stop_after  # nothing completed was lost

    fresh = EvaluationEngine("serial")
    result = run_study(spec, engine=fresh, archive_dir=str(tmp_path),
                       resume=True, checkpoint_every=1)
    # Zero recompute: the fresh engine computed only the remainder.
    assert fresh.rounds_computed == total - len(rows)
    assert result.study_fingerprint == spec.fingerprint()


def test_worker_stop_midstudy_leaves_resumable_entry(tmp_path, ctx_spec):
    """stop() during a study: the entry stays queued, a checkpoint
    holds the finished rounds, and a second worker finishes the study
    without recomputing them (asserted via engine round counts)."""
    spec = studies.figure1(
        context=ctx_spec,
        percentiles=(0.02, 0.04, 0.06, 0.08, 0.10, 0.12), n_repeats=1)
    total = describe_study(spec).n_rounds
    fp = spec.fingerprint()
    queue = StudyQueue(str(tmp_path))
    queue.submit(spec)

    first_engine = EvaluationEngine("serial")
    worker = SchedulerWorker(queue, _config(tmp_path),
                             engine=first_engine, name="w-first")
    worker.start()
    try:
        # Wait for real progress, then yank the worker mid-study.
        _wait(lambda: (queue.lease_info(fp) or {}).get("done", 0) >= 1,
              message="first rounds to land")
    finally:
        worker.stop()
        worker.join(timeout=30.0)

    assert queue.lease_info(fp) is None  # lease released on the way out
    entry = queue.get(fp)
    if entry is None:
        # The study finished before stop() won the race — legal, but
        # then there is nothing to resume; the test needs slower runs.
        pytest.skip("study completed before the interrupt landed")
    assert entry.state == "queued"
    rows = load_checkpoint(str(tmp_path), fp)
    assert rows  # the shutdown flushed completed rounds

    second_engine = EvaluationEngine("serial")
    second = SchedulerWorker(queue, _config(tmp_path),
                             engine=second_engine, name="w-second")
    second.start()
    try:
        _wait(lambda: (queue.study_state(fp) or {}).get("state") == "done",
              message="resumed study to archive")
    finally:
        second.stop()
        second.join(timeout=30.0)
    # Zero recompute across the handover: first worker's rounds plus
    # the second's sum to exactly the study's total.
    assert second_engine.rounds_computed == total - len(rows)
    assert first_engine.rounds_computed + second_engine.rounds_computed \
        == total


def test_two_workers_never_run_the_same_study_twice(tmp_path, spec_maker):
    """N workers over one queue: every study runs exactly once (the
    O_EXCL lease is the only coordination)."""
    specs = [spec_maker(seed_offset=i) for i in range(1, 5)]
    total = sum(describe_study(s).n_rounds for s in specs)
    queue = StudyQueue(str(tmp_path))
    for spec in specs:
        queue.submit(spec)

    engines = [EvaluationEngine("serial"), EvaluationEngine("serial")]
    workers = [SchedulerWorker(queue, _config(tmp_path), engine=eng,
                               name=f"w{i}")
               for i, eng in enumerate(engines)]
    for worker in workers:
        worker.start()
    try:
        _wait(lambda: all((queue.study_state(s.fingerprint()) or {})
                          .get("state") == "done" for s in specs),
              message="all studies archived")
    finally:
        for worker in workers:
            worker.stop()
        for worker in workers:
            worker.join(timeout=30.0)
    # Exactly-once execution: the fleet computed each round once.
    assert sum(e.rounds_computed for e in engines) == total
    assert sum(w.studies_completed for w in workers) == len(specs)
