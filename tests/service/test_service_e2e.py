"""End-to-end over real HTTP: submit → stream → result, dedupe, parity."""

import json
import threading
import time

import pytest

from repro.engine import EvaluationEngine
from repro.service import ReproService, ServiceConfig
from repro.study import run_study


@pytest.fixture()
def engine():
    return EvaluationEngine("serial")


@pytest.fixture()
def svc(tmp_path, engine):
    service = ReproService(ServiceConfig(
        archive_dir=str(tmp_path / "archive"), poll_interval=0.05,
        lease_ttl=5.0, retries=0, backoff=0.01),
        engine=engine).start()
    yield service
    service.stop()


@pytest.fixture()
def svc_client(svc, client_class):
    return client_class(svc.host, svc.port)


def _wait_done(client, fp, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, doc = client.json("GET", f"/studies/{fp}")
        assert status == 200
        if doc["state"] in ("done", "failed"):
            return doc
        time.sleep(0.05)
    raise AssertionError(f"study {fp[:12]} never finished")


def test_submit_stream_fetch_bit_identical(svc_client, tiny_spec,
                                           tmp_path):
    fp = tiny_spec.fingerprint()
    status, doc = svc_client.json("POST", "/studies", tiny_spec.to_obj())
    assert status == 202
    assert doc == {"fingerprint": fp, "state": "queued",
                   "deduped": False, "queue_position": 1}

    status, events = svc_client.stream_lines(f"/studies/{fp}/stream")
    assert status == 200
    assert events  # at least the snapshot event
    assert events[-1]["state"] == "done"
    assert all(e["fingerprint"] == fp for e in events)

    status, doc = svc_client.json("GET", f"/studies/{fp}")
    assert status == 200
    assert doc["state"] == "done"
    assert doc["summary"]["fingerprint"] == fp
    assert doc["summary"]["n_scenarios"] > 0

    status, served = svc_client.json("GET", f"/studies/{fp}/result")
    assert status == 200
    status, report = svc_client.request("GET", f"/studies/{fp}/report")
    assert status == 200
    assert b"Figure 1" in report

    # Bit-identical to a direct run_study: same payload, same scenario
    # records, same fingerprints (wall time and engine stats are the
    # run's own history and legitimately differ).
    direct = json.loads(
        run_study(tiny_spec, engine=EvaluationEngine("serial")).to_json())
    served, direct = served["data"], direct["data"]
    assert served["payload"] == direct["payload"]
    assert served["scenarios"] == direct["scenarios"]
    assert served["study_fingerprint"] == direct["study_fingerprint"]
    assert served["context_fingerprints"] == \
        direct["context_fingerprints"]


def test_concurrent_submits_one_computation(svc_client, svc, engine,
                                            tiny_spec):
    """Two simultaneous POSTs of one spec: exactly one computation,
    asserted through the engine's batch telemetry."""
    fp = tiny_spec.fingerprint()
    body = json.dumps(tiny_spec.to_obj())
    results = []
    barrier = threading.Barrier(2)

    def post():
        barrier.wait()
        results.append(svc_client.json("POST", "/studies", body))

    threads = [threading.Thread(target=post) for _ in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    assert {status for status, _ in results} <= {200, 202}
    assert sorted(doc["deduped"] for _, doc in results) == [False, True]
    assert {doc["fingerprint"] for _, doc in results} == {fp}

    _wait_done(svc_client, fp)
    svc.workers[0].wait_idle(timeout=30.0)
    # One computation: every computed round is accounted to exactly one
    # batch pass over the study; a duplicate run would double it.
    direct_engine = EvaluationEngine("serial")
    run_study(tiny_spec, engine=direct_engine)
    assert engine.rounds_computed == direct_engine.rounds_computed
    assert len(engine.batch_log) == len(direct_engine.batch_log)


def test_already_archived_submit_zero_recompute(svc_client, svc, engine,
                                                tiny_spec):
    fp = tiny_spec.fingerprint()
    status, first = svc_client.json("POST", "/studies", tiny_spec.to_obj())
    assert status == 202
    _wait_done(svc_client, fp)
    svc.workers[0].wait_idle(timeout=30.0)
    rounds_after_first = engine.rounds_computed
    batches_after_first = len(engine.batch_log)

    status, doc = svc_client.json("POST", "/studies", tiny_spec.to_obj())
    assert status == 200
    assert doc == {"fingerprint": fp, "state": "done", "deduped": True}
    # The archive answered; nothing was queued, nothing recomputed.
    time.sleep(0.3)
    assert engine.rounds_computed == rounds_after_first
    assert len(engine.batch_log) == batches_after_first
    assert svc.queue.get(fp) is None


def test_priority_wrapper_and_queue_route(svc_client, svc, spec_maker):
    lo = spec_maker(seed_offset=21)
    hi = spec_maker(seed_offset=22)
    svc_client.json("POST", "/studies", lo.to_obj())
    status, doc = svc_client.json(
        "POST", "/studies", {"study": hi.to_obj(), "priority": 9})
    assert status in (200, 202)

    status, listing = svc_client.json("GET", "/queue")
    assert status == 200
    assert set(listing["counts"]) >= {"queued", "running", "failed",
                                      "cancelled"}
    by_fp = {e["fingerprint"]: e for e in listing["entries"]}
    if hi.fingerprint() in by_fp:  # may already have finished
        assert by_fp[hi.fingerprint()]["priority"] == 9

    _wait_done(svc_client, lo.fingerprint())
    _wait_done(svc_client, hi.fingerprint())


def test_queue_route_counters_when_telemetry_armed(tmp_path, client_class,
                                                   spec_maker):
    """/queue surfaces the service.* counters once telemetry is armed."""
    from repro import telemetry

    telemetry.configure(metrics_only=True)
    try:
        service = ReproService(ServiceConfig(
            archive_dir=str(tmp_path / "archive"), poll_interval=0.05),
            engine=EvaluationEngine("serial")).start()
        try:
            client = client_class(service.host, service.port)
            spec = spec_maker(seed_offset=31)
            client.json("POST", "/studies", spec.to_obj())
            _wait_done(client, spec.fingerprint())
            status, listing = client.json("GET", "/queue")
        finally:
            service.stop()
        assert status == 200
        counters = listing["counters"]
        assert counters["service.queue.submitted"] >= 1
        assert counters["service.queue.leased"] >= 1
        assert counters["service.studies.completed"] >= 1
    finally:
        telemetry.configure()  # disarm
        telemetry.reset()


def test_result_before_done_is_a_named_404(svc_client, svc, tiny_spec):
    # Stop the scheduler so the study stays queued.
    for worker in svc.workers:
        worker.stop()
    for worker in svc.workers:
        worker.join(timeout=30.0)
    fp = tiny_spec.fingerprint()
    svc_client.json("POST", "/studies", tiny_spec.to_obj())
    status, doc = svc_client.json("GET", f"/studies/{fp}/result")
    assert status == 404
    assert "queued" in doc["error"] and "not done" in doc["error"]
    status, doc = svc_client.json("GET", f"/studies/{fp}/report")
    assert status == 404
    assert "report" in doc["error"]


def test_health_reports_workers(svc_client, svc):
    status, doc = svc_client.json("GET", "/health")
    assert status == 200
    assert doc["status"] == "ok"
    assert doc["auth"] is False
    assert len(doc["workers"]) == 1
    assert doc["workers"][0]["alive"] is True
