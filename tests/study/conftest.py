"""Fixtures for the study-layer tests: one small synthetic setting."""

import pytest

from repro.study import ContextSpec


@pytest.fixture(scope="session")
def ctx_spec():
    """A declarative context: small synthetic task, fast to materialise."""
    return ContextSpec(name="synthetic", seed=0, n_samples=260,
                       params={"n_features": 4})


@pytest.fixture(scope="session")
def study_ctx(ctx_spec):
    """The live context ``ctx_spec`` names (materialised once)."""
    return ctx_spec.materialize()
