"""PR 6 batched victim training at the study layer.

``execute_rounds`` groups same-shape victim fits across a batch and
trains them in lockstep (:meth:`LinearSVM.fit_many`).  Batching is an
execution strategy, never part of the measured science, so the study
layer must not be able to tell it apart from per-round execution:
payloads, scenario cache keys and per-round outcomes are bit-identical
with batching on or off, across serial and process backends, and a
cache populated by an unbatched run is fully hit by a batched rerun
(the CLI ``--expect-cached`` gate).
"""

import pytest

from repro.engine import EvaluationEngine
from repro.experiments.cli import main
from repro.study import run_study, studies

CTX_SETS = ["--set", "context=synthetic", "--set", "n_samples=260"]
SMALL = CTX_SETS + ["--set", "percentiles=0.0,0.1,0.3",
                    "--set", "n_repeats=3", "--no-progress"]


def grid_spec(ctx_spec):
    """An uncached mixed grid with a repeat axis — repeats are exactly
    the rounds execute_rounds groups into one lockstep fit."""
    return studies.grid(context=ctx_spec,
                        defenses=("radius:0.1", "none"),
                        attacks=("boundary:0.05", "clean"),
                        fractions=(0.1, 0.2),
                        n_repeats=3)


class TestBatchedStudyParity:
    def test_serial_batched_equals_unbatched(self, ctx_spec, monkeypatch):
        spec = grid_spec(ctx_spec)
        batched = run_study(spec,
                            engine=EvaluationEngine("serial", cache=False))
        monkeypatch.setenv("REPRO_BATCH_FITS", "0")
        plain = run_study(spec,
                          engine=EvaluationEngine("serial", cache=False))
        assert batched.payload == plain.payload
        assert batched.scenarios == plain.scenarios  # keys + outcomes

    def test_process_backend_matches_serial(self, ctx_spec):
        spec = grid_spec(ctx_spec)
        serial = run_study(spec,
                           engine=EvaluationEngine("serial", cache=False))
        process = run_study(spec,
                            engine=EvaluationEngine("process", cache=False,
                                                    jobs=2))
        assert process.payload == serial.payload
        assert process.scenarios == serial.scenarios


class TestExpectCachedAcrossToggle:
    def test_unbatched_cache_fully_hit_by_batched_rerun(self, tmp_path,
                                                        monkeypatch,
                                                        capsys):
        """Cache keys cannot depend on the execution strategy: a cold
        run with batching disabled must leave a cache the batched
        engine replays without computing a single round."""
        cache = str(tmp_path / "cache")
        args = ["run", "figure1"] + SMALL + ["--cache-dir", cache]
        monkeypatch.setenv("REPRO_BATCH_FITS", "0")
        assert main(args) == 0
        monkeypatch.delenv("REPRO_BATCH_FITS")
        assert main(args + ["--expect-cached"]) == 0
        capsys.readouterr()

    def test_batched_run_is_its_own_fixed_point(self, tmp_path, capsys):
        """And the reverse: a batched cold run replays batched."""
        cache = str(tmp_path / "cache")
        args = ["run", "figure1"] + SMALL + ["--cache-dir", cache]
        assert main(args) == 0
        assert main(args + ["--expect-cached"]) == 0
        capsys.readouterr()
