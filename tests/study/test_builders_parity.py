"""Every legacy driver == its StudySpec equivalent, bit for bit.

The acceptance bar of the study redesign: each deprecated driver call
(a) emits exactly one DeprecationWarning and (b) returns results
bit-identical to ``run_study`` on the builder-equivalent spec — across
serial/process backends and warm/cold cache states — and the two paths
populate the engine cache under exactly the same keys.
"""

import dataclasses

import numpy as np
import pytest

from repro.engine import EvaluationEngine
from repro.study import run_study, studies

PERCENTILES = (0.0, 0.1, 0.3)
FRACTION = 0.25


def drop_wall_time(row: dict) -> dict:
    row = dict(row)
    row.pop("wall_time_seconds", None)
    return row


@pytest.fixture(params=["serial", "process"], scope="module")
def backend(request):
    return request.param


def make_engine(backend):
    jobs = 2 if backend == "process" else None
    return EvaluationEngine(backend, jobs=jobs)


class TestFigure1Parity:
    def test_shim_warns_once_and_matches(self, ctx_spec, study_ctx, backend):
        from repro.experiments import run_pure_strategy_sweep

        legacy_engine = make_engine(backend)
        with pytest.warns(DeprecationWarning, match="figure1") as record:
            legacy = run_pure_strategy_sweep(
                study_ctx, percentiles=np.array(PERCENTILES),
                poison_fraction=FRACTION, engine=legacy_engine)
        assert len([w for w in record
                    if w.category is DeprecationWarning]) == 1

        study_engine = make_engine(backend)
        result = run_study(
            studies.figure1(context=ctx_spec, percentiles=PERCENTILES,
                            poison_fraction=FRACTION),
            engine=study_engine)
        assert result.payload_object() == legacy

        # Same rounds entered both caches under the same keys — and a
        # warm re-run of either path computes nothing.
        assert sorted(legacy_engine.cache._memory) == \
            sorted(study_engine.cache._memory)
        rerun = run_study(
            studies.figure1(context=ctx_spec, percentiles=PERCENTILES,
                            poison_fraction=FRACTION),
            engine=legacy_engine)  # warm cache from the *legacy* run
        assert rerun.rounds_computed == 0
        assert rerun.payload_object() == legacy


class TestMixedEvalParity:
    def test_shim_matches_study(self, ctx_spec, study_ctx):
        from repro.core.mixed_strategy import MixedDefense
        from repro.experiments import evaluate_mixed_defense

        support = (0.05, 0.2)
        probs = (0.5, 0.5)
        engine = make_engine("serial")
        with pytest.warns(DeprecationWarning, match="mixed_eval"):
            acc, disp, matrix = evaluate_mixed_defense(
                study_ctx,
                MixedDefense(np.array(support), np.array(probs)),
                poison_fraction=FRACTION, engine=engine)

        result = run_study(
            studies.mixed_eval(context=ctx_spec, percentiles=support,
                               probabilities=probs,
                               poison_fraction=FRACTION),
            engine=make_engine("serial"))
        payload = result.payload_object()
        assert payload.expected_accuracy == acc
        assert payload.dispersion == disp
        assert payload.accuracy_matrix == matrix.tolist()


class TestTable1Parity:
    def test_shim_matches_study(self, ctx_spec, study_ctx, backend):
        from repro.experiments import (run_pure_strategy_sweep,
                                       run_table1_experiment)

        legacy_engine = make_engine(backend)
        with pytest.warns(DeprecationWarning):
            sweep = run_pure_strategy_sweep(
                study_ctx, percentiles=np.array(PERCENTILES),
                poison_fraction=FRACTION, engine=legacy_engine)
        with pytest.warns(DeprecationWarning, match="table1") as record:
            rows = run_table1_experiment(
                study_ctx, sweep, n_radii_values=(2,),
                poison_fraction=FRACTION, engine=legacy_engine)
        assert len([w for w in record
                    if w.category is DeprecationWarning]) == 1

        result = run_study(
            studies.table1(context=ctx_spec, percentiles=PERCENTILES,
                           n_radii=(2,), poison_fraction=FRACTION),
            engine=make_engine(backend))
        payload = result.payload_object()
        assert payload["sweep"] == sweep
        assert [drop_wall_time(dataclasses.asdict(r))
                for r in payload["rows"]] == \
            [drop_wall_time(dataclasses.asdict(r)) for r in rows]


class TestEmpiricalGameParity:
    def test_shim_matches_study(self, ctx_spec, study_ctx, backend):
        from repro.experiments import solve_empirical_game

        with pytest.warns(DeprecationWarning, match="empirical_game"):
            legacy = solve_empirical_game(
                study_ctx, percentiles=np.array(PERCENTILES),
                poison_fraction=FRACTION, engine=make_engine(backend))

        result = run_study(
            studies.empirical_game(context=ctx_spec,
                                   percentiles=PERCENTILES,
                                   poison_fraction=FRACTION),
            engine=make_engine(backend))
        # defender_support holds tuples; JSON round-trips them as lists,
        # so compare on the listified dict form.
        from repro.experiments.results import result_to_payload

        assert result_to_payload(result.payload_object()) == \
            result_to_payload(legacy)


class TestCrossGameParity:
    DEFENSES = ("radius:0.1", "slab_filter:0.1", "none")
    ATTACKS = ("boundary:0.05", "label-flip", "clean")

    def test_shim_matches_study(self, ctx_spec, study_ctx):
        from repro.engine import parse_attack_spec, parse_defense_spec
        from repro.experiments import solve_cross_family_game

        with pytest.warns(DeprecationWarning, match="cross_game"):
            legacy = solve_cross_family_game(
                study_ctx,
                [parse_defense_spec(d) for d in self.DEFENSES],
                [parse_attack_spec(a) for a in self.ATTACKS],
                poison_fraction=FRACTION, engine=make_engine("serial"))

        result = run_study(
            studies.cross_game(context=ctx_spec, defenses=self.DEFENSES,
                               attacks=self.ATTACKS,
                               poison_fraction=FRACTION),
            engine=make_engine("serial"))
        assert result.payload_object() == legacy


class TestMultiSeedParity:
    def test_shim_matches_study(self, ctx_spec):
        from repro.experiments import run_multi_seed_sweep
        from repro.experiments.runner import make_synthetic_context

        with pytest.warns(DeprecationWarning, match="multi_seed") as record:
            legacy = run_multi_seed_sweep(
                n_seeds=2, base_seed=4,
                context_factory=lambda seed: make_synthetic_context(
                    seed=seed, n_samples=260, n_features=4),
                percentiles=np.array([0.0, 0.2]),
                poison_fraction=FRACTION, engine=make_engine("serial"))
        assert len([w for w in record
                    if w.category is DeprecationWarning]) == 1

        result = run_study(
            studies.multi_seed(context=ctx_spec, n_seeds=2, base_seed=4,
                               percentiles=(0.0, 0.2),
                               poison_fraction=FRACTION),
            engine=make_engine("serial"))
        agg = result.payload_object()
        np.testing.assert_array_equal(agg.acc_clean_mean,
                                      legacy.acc_clean_mean)
        np.testing.assert_array_equal(agg.acc_attacked_mean,
                                      legacy.acc_attacked_mean)
        np.testing.assert_array_equal(agg.acc_attacked_std,
                                      legacy.acc_attacked_std)
        assert agg.per_seed == legacy.per_seed
        assert len(result.context_fingerprints) == 2

    def test_custom_context_factory_stays_supported(self):
        from repro.experiments import run_multi_seed_sweep
        from repro.experiments.runner import make_synthetic_context

        calls = []

        def factory(seed):
            calls.append(seed)
            return make_synthetic_context(seed=seed, n_samples=240,
                                          n_features=3)

        with pytest.warns(DeprecationWarning):
            agg = run_multi_seed_sweep(
                n_seeds=2, context_factory=factory,
                percentiles=np.array([0.0, 0.2]),
                engine=make_engine("serial"))
        assert agg.n_seeds == 2
        assert len(calls) == 2


class TestDiskCacheParity:
    def test_legacy_and_study_share_disk_entries(self, ctx_spec, study_ctx,
                                                 tmp_path):
        """Cold study run -> warm *legacy* rerun from the same disk dir."""
        from repro.experiments import run_pure_strategy_sweep

        disk = str(tmp_path / "cache")
        study_engine = EvaluationEngine("serial", cache_dir=disk)
        result = run_study(
            studies.figure1(context=ctx_spec, percentiles=PERCENTILES,
                            poison_fraction=FRACTION),
            engine=study_engine)
        assert result.rounds_computed > 0

        legacy_engine = EvaluationEngine("serial", cache_dir=disk)
        with pytest.warns(DeprecationWarning):
            legacy = run_pure_strategy_sweep(
                study_ctx, percentiles=np.array(PERCENTILES),
                poison_fraction=FRACTION, engine=legacy_engine)
        assert legacy_engine.rounds_computed == 0  # all served from disk
        assert legacy == result.payload_object()
