"""Study checkpointing: crash-surviving progress, resume, atomicity.

The acceptance test at the bottom is the one from the issue: SIGKILL a
``run_study`` mid-sweep (no cleanup handlers run — exactly what a
crashed box looks like), then ``resume=True`` and prove via the
engine's batch telemetry that every checkpointed round came back as a
cache hit and zero of them were recomputed.
"""

import glob
import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.engine import EvaluationEngine, cache_schema_version
from repro.study import (StudyCheckpointer, archive_path, checkpoint_path,
                         load_checkpoint, run_study, studies,
                         study_result_from_json)

PERCENTILES = (0.0, 0.1, 0.2, 0.3)


def figure1_spec(ctx_spec, **kwargs):
    kwargs.setdefault("percentiles", PERCENTILES)
    kwargs.setdefault("poison_fraction", 0.25)
    return studies.figure1(context=ctx_spec, **kwargs)


def _row(i):
    return {"key": f"{i:064d}", "context": "c", "scenario": {},
            "outcome": {"accuracy": 0.5}}


class TestCheckpointer:
    def test_flush_cadence_and_dedupe(self, tmp_path):
        cp = StudyCheckpointer(str(tmp_path), "f" * 64, every=2)
        cp.note(_row(0))
        assert not os.path.exists(cp.path)  # below cadence
        cp.note(_row(0))  # duplicate key: ignored, still unflushed
        assert not os.path.exists(cp.path)
        cp.note(_row(1))
        assert os.path.exists(cp.path)  # cadence reached
        doc = json.loads(open(cp.path).read())
        assert doc["type"] == "StudyCheckpoint"
        assert doc["cache_schema_version"] == cache_schema_version()
        assert [r["key"] for r in doc["scenarios"]] == \
            [_row(0)["key"], _row(1)["key"]]

    def test_seed_does_not_flush_but_protects_progress(self, tmp_path):
        cp = StudyCheckpointer(str(tmp_path), "f" * 64, every=1)
        cp.seed([_row(0), _row(1)])
        assert not os.path.exists(cp.path)
        cp.note(_row(0))  # resumed round seen again: no-op
        assert not os.path.exists(cp.path)
        cp.note(_row(2))  # first *new* round flushes everything
        rows = load_checkpoint(str(tmp_path), "f" * 64)
        assert len(rows) == 3

    def test_discard(self, tmp_path):
        cp = StudyCheckpointer(str(tmp_path), "f" * 64, every=1)
        cp.note(_row(0))
        assert os.path.exists(cp.path)
        cp.discard()
        assert not os.path.exists(cp.path)
        cp.discard()  # idempotent


class TestLoadTolerance:
    def test_absent_checkpoint_is_silently_empty(self, tmp_path):
        assert load_checkpoint(str(tmp_path), "f" * 64) == []

    def test_corrupt_json_warns_and_recomputes(self, tmp_path):
        path = checkpoint_path(str(tmp_path), "f" * 64)
        with open(path, "w") as fh:
            fh.write("{half a doc")
        with pytest.warns(UserWarning, match="unreadable"):
            assert load_checkpoint(str(tmp_path), "f" * 64) == []

    def test_foreign_checkpoint_warns(self, tmp_path):
        cp = StudyCheckpointer(str(tmp_path), "a" * 64, every=1)
        cp.note(_row(0))
        os.rename(cp.path, checkpoint_path(str(tmp_path), "b" * 64))
        with pytest.warns(UserWarning, match="does not belong"):
            assert load_checkpoint(str(tmp_path), "b" * 64) == []

    def test_schema_mismatch_warns(self, tmp_path):
        cp = StudyCheckpointer(str(tmp_path), "f" * 64, every=1)
        cp.note(_row(0))
        doc = json.loads(open(cp.path).read())
        doc["cache_schema_version"] = -1
        with open(cp.path, "w") as fh:
            json.dump(doc, fh)
        with pytest.warns(UserWarning, match="cache schema"):
            assert load_checkpoint(str(tmp_path), "f" * 64) == []


class TestAtomicArchive:
    def test_to_json_leaves_no_temp_files(self, ctx_spec, tmp_path):
        spec = figure1_spec(ctx_spec, percentiles=(0.0, 0.1))
        result = run_study(spec, engine=EvaluationEngine("serial"))
        target = str(tmp_path / "archive.json")
        result.to_json(target)
        assert study_result_from_json(target).study_fingerprint == \
            result.study_fingerprint
        assert os.listdir(tmp_path) == ["archive.json"]


class TestResume:
    def test_resume_requires_archive_dir(self, ctx_spec):
        with pytest.raises(ValueError, match="archive_dir"):
            run_study(figure1_spec(ctx_spec), resume=True)

    def test_interrupted_study_resumes_with_zero_recompute(self, ctx_spec,
                                                           tmp_path):
        """Abort after 3 rounds; the resumed run recomputes only the
        rest, and its archive is bit-identical to an uninterrupted one.
        """
        spec = figure1_spec(ctx_spec)
        reference = run_study(spec, engine=EvaluationEngine("serial"))
        archive_dir = str(tmp_path)

        class Abort(RuntimeError):
            pass

        def abort_after(done, total):
            if done >= 3:
                raise Abort

        with pytest.raises(Abort):
            run_study(spec, engine=EvaluationEngine("serial"),
                      archive_dir=archive_dir, checkpoint_every=1,
                      progress=abort_after)
        rows = load_checkpoint(archive_dir, spec.fingerprint())
        assert len(rows) >= 3

        engine = EvaluationEngine("serial")  # fresh, empty cache
        result = run_study(spec, engine=engine, archive_dir=archive_dir,
                           resume=True)
        computed = sum(b["computed"] for b in engine.batch_log)
        assert computed == reference.n_unique - len(rows)
        assert result.extras["resumed_scenarios"] == len(rows)
        assert result.scenarios == reference.scenarios
        # the archive subsumes the checkpoint
        assert not os.path.exists(
            checkpoint_path(archive_dir, spec.fingerprint()))
        assert os.path.exists(archive_path(archive_dir, spec.fingerprint()))

    def test_resume_without_cache_warns_and_recomputes(self, ctx_spec,
                                                       tmp_path):
        spec = figure1_spec(ctx_spec, percentiles=(0.0, 0.1))
        archive_dir = str(tmp_path)
        cp = StudyCheckpointer(archive_dir, spec.fingerprint(), every=1)
        ref = run_study(spec, engine=EvaluationEngine("serial"))
        for row in ref.scenarios[:2]:
            cp.note(dict(row))
        engine = EvaluationEngine("serial", cache=False)
        with pytest.warns(UserWarning, match="no cache"):
            result = run_study(spec, engine=engine, archive_dir=archive_dir,
                               resume=True)
        assert result.scenarios == ref.scenarios

    def test_checkpoint_gone_after_clean_run(self, ctx_spec, tmp_path):
        spec = figure1_spec(ctx_spec, percentiles=(0.0, 0.1))
        run_study(spec, engine=EvaluationEngine("serial"),
                  archive_dir=str(tmp_path), checkpoint_every=1)
        assert glob.glob(str(tmp_path / "checkpoint-*")) == []
        assert os.path.exists(archive_path(str(tmp_path),
                                           spec.fingerprint()))


CHILD = textwrap.dedent("""\
    import os, signal, sys
    from repro.engine import EvaluationEngine
    from repro.study import ContextSpec, run_study, studies

    archive_dir = sys.argv[1]
    spec = studies.figure1(
        context=ContextSpec(name="synthetic", seed=0, n_samples=260,
                            params={"n_features": 4}),
        percentiles=(0.0, 0.1, 0.2, 0.3), poison_fraction=0.25)

    def kill_after(done, total):
        if done >= 3:
            os.kill(os.getpid(), signal.SIGKILL)  # no cleanup, no flush

    run_study(spec, engine=EvaluationEngine("serial"),
              archive_dir=archive_dir, checkpoint_every=1,
              progress=kill_after)
""")


class TestSigkillAcceptance:
    def test_sigkilled_study_resumes_bit_identical(self, ctx_spec,
                                                   tmp_path):
        spec = figure1_spec(ctx_spec)
        archive_dir = str(tmp_path)
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in [os.path.dirname(os.path.dirname(
                os.path.abspath(__import__("repro").__file__))),
                env.get("PYTHONPATH", "")] if p)
        proc = subprocess.run([sys.executable, "-c", CHILD, archive_dir],
                              env=env, timeout=120)
        assert proc.returncode == -signal.SIGKILL

        rows = load_checkpoint(archive_dir, spec.fingerprint())
        assert len(rows) >= 3  # progress survived the kill

        reference = run_study(spec, engine=EvaluationEngine("serial"))
        engine = EvaluationEngine("serial")
        result = run_study(spec, engine=engine, archive_dir=archive_dir,
                           resume=True)
        # telemetry: every checkpointed round was a cache hit
        assert sum(b["computed"] for b in engine.batch_log) == \
            reference.n_unique - len(rows)
        assert sum(b["cache_hits"] for b in engine.batch_log) == len(rows)
        assert result.scenarios == reference.scenarios
        assert result.payload == reference.payload
