"""The study CLI surface: repro run / describe / report."""

import json

import pytest

from repro.experiments.cli import main

CTX_SETS = ["--set", "context=synthetic", "--set", "n_samples=260"]
SMALL = CTX_SETS + ["--set", "percentiles=0.0,0.1,0.3", "--no-progress"]


class TestSetParsing:
    def test_range_literal_and_list(self):
        from repro.experiments.cli import _parse_set_value

        assert _parse_set_value("0:0.2:9") == tuple(
            0.2 * i / 8 for i in range(9))
        assert _parse_set_value("3") == 3
        assert _parse_set_value("0.25") == 0.25
        assert _parse_set_value("logistic") == "logistic"
        assert _parse_set_value("none") is None
        assert _parse_set_value("0.1,0.2") == (0.1, 0.2)
        assert _parse_set_value("radius:0.1;slab_filter:0.1") == \
            ("radius:0.1", "slab_filter:0.1")
        # Comma splitting is bracket-aware: a spec string with a
        # list-valued param stays one element.
        assert _parse_set_value("knn_sanitizer::k=[1,2]") == \
            "knn_sanitizer::k=[1,2]"
        assert _parse_set_value("radius:0.1,knn_sanitizer::k=[1,2]") == \
            ("radius:0.1", "knn_sanitizer::k=[1,2]")

    def test_bad_set_rejected(self):
        with pytest.raises(SystemExit, match="key=value"):
            main(["run", "figure1", "--set", "nonsense"])
        with pytest.raises(SystemExit, match="cannot build study"):
            main(["run", "figure1", "--set", "wrong_knob=1"])
        with pytest.raises(SystemExit, match="unknown study"):
            main(["run", "seance"])


class TestRun:
    def test_run_named_study_and_report(self, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        code = main(["run", "figure1"] + SMALL + ["--out", out])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Figure 1" in captured
        assert "Provenance" in captured
        assert "Engine stats" in captured

        # repro report renders the archived artifact's report again.
        assert main(["report", out]) == 0
        reported = capsys.readouterr().out
        assert "Figure 1" in reported
        assert "Provenance" in reported

    def test_run_study_json_document(self, tmp_path, capsys):
        from repro.study import studies, study_to_json

        spec = studies.empirical_game(
            context={"name": "synthetic", "n_samples": 260},
            percentiles=(0.0, 0.1, 0.2))
        path = str(tmp_path / "study.json")
        study_to_json(spec, path)
        assert main(["run", path, "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "Measured-game equilibrium defence" in out

    def test_expect_cached_gate(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        args = ["run", "figure1"] + SMALL + ["--cache-dir", cache]
        assert main(args) == 0
        # Fully cached rerun passes the gate; a cold run fails it.
        assert main(args + ["--expect-cached"]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="expect-cached"):
            main(["run", "figure1"] + SMALL +
                 ["--set", "seed=9", "--cache-dir", cache,
                  "--expect-cached"])

    def test_archive_dir_skips_second_run(self, tmp_path, capsys):
        archive = str(tmp_path / "archive")
        args = ["run", "figure1"] + SMALL + ["--archive-dir", archive]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "served from the study archive" in capsys.readouterr().out
        # Nothing ran in this invocation, so the determinism gate holds
        # even though the archived artifact records a cold first run.
        assert main(args + ["--expect-cached"]) == 0

    def test_single_element_axis_values(self, capsys):
        """A one-element --set value means a one-point axis, not an
        iterated scalar/string."""
        code = main(["run", "grid"] + CTX_SETS +
                    ["--set", "defenses=radius:0.1",
                     "--set", "attacks=boundary:0.05",
                     "--set", "fractions=0.3", "--no-progress"])
        assert code == 0
        assert "Scenario grid" in capsys.readouterr().out
        code = main(["run", "figure1"] + CTX_SETS +
                    ["--set", "percentiles=0.1",
                     "--set", "fractions=0.3", "--no-progress"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_multi_fraction_set(self, capsys):
        code = main(["run", "figure1"] + CTX_SETS +
                    ["--set", "percentiles=0.0,0.1",
                     "--set", "fractions=0.1:0.2:2", "--no-progress"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Figure 1") == 2

    def test_set_on_json_document_rejected(self, tmp_path):
        from repro.study import studies, study_to_json

        path = str(tmp_path / "study.json")
        study_to_json(studies.figure1(), path)
        with pytest.raises(SystemExit, match="--set applies"):
            main(["run", path, "--set", "seed=3"])

    def test_missing_document_rejected(self):
        with pytest.raises(SystemExit, match="cannot load study"):
            main(["run", "missing-study.json"])

    def test_stray_directory_does_not_shadow_named_study(self, tmp_path,
                                                         capsys,
                                                         monkeypatch):
        """A cwd directory named like a builder (e.g. an output dir
        called figure1) must not hijack `repro describe figure1`."""
        (tmp_path / "figure1").mkdir()
        monkeypatch.chdir(tmp_path)
        assert main(["describe", "figure1"] + SMALL) == 0
        assert "study: figure1" in capsys.readouterr().out

    def test_runtime_value_errors_exit_cleanly(self):
        """Errors surfacing inside run_study (e.g. an unknown context
        maker) exit with a message, not a traceback."""
        with pytest.raises(SystemExit, match="cannot run study"):
            main(["run", "figure1", "--set", "context=bogus",
                  "--no-progress"])

    def test_study_document_engine_config_honoured(self, tmp_path,
                                                   capsys):
        """`repro run study.json` uses the document's EngineConfig when
        no engine flag is given; explicit flags still win."""
        from repro.study import EngineConfig, studies, study_to_json

        disk = str(tmp_path / "doc-cache")
        spec = studies.figure1(
            context={"name": "synthetic", "n_samples": 260},
            percentiles=(0.0, 0.1),
            engine=EngineConfig(cache_dir=disk))
        path = str(tmp_path / "study.json")
        study_to_json(spec, path)
        assert main(["run", path, "--no-progress"]) == 0
        capsys.readouterr()
        import os

        assert os.path.isdir(disk)  # the document's cache came on
        # Second run through the document: served from its disk cache.
        assert main(["run", path, "--no-progress",
                     "--expect-cached"]) == 0
        # An explicit flag overrides the document preference — even one
        # that happens to spell the default value.
        other = str(tmp_path / "flag-cache")
        assert main(["run", path, "--no-progress",
                     "--cache-dir", other]) == 0
        assert os.path.isdir(other)
        before = set(os.listdir(disk))
        assert main(["run", path, "--no-progress",
                     "--backend", "serial"]) == 0
        assert set(os.listdir(disk)) == before  # document cache not used


class TestDescribe:
    def test_describe_prints_grid_and_counts(self, capsys):
        code = main(["describe", "figure1"] + SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "study: figure1" in out
        assert "Dry run" in out
        assert "total rounds: 6" in out

    def test_describe_predicts_disk_cache_hits(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", "figure1"] + SMALL +
                    ["--cache-dir", cache]) == 0
        capsys.readouterr()
        assert main(["describe", "figure1"] + SMALL +
                    ["--cache-dir", cache]) == 0
        out = capsys.readouterr().out
        assert "predicted cache hits: 6" in out

    def test_describe_table1_marks_dynamic_phases(self, capsys):
        assert main(["describe", "table1"] + SMALL) == 0
        out = capsys.readouterr().out
        assert "chosen by the solver" in out


class TestReport:
    def test_bad_report_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="cannot load study result"):
            main(["report", str(tmp_path / "missing.json")])
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"type": "not-a-result"}))
        with pytest.raises(SystemExit, match="cannot load study result"):
            main(["report", str(bad)])

    def test_report_cross_game_artifact(self, tmp_path, capsys):
        out = str(tmp_path / "cross.json")
        assert main(["run", "cross-game"] + CTX_SETS +
                    ["--set", "defenses=radius:0.1;none",
                     "--set", "attacks=boundary:0.05;clean",
                     "--no-progress", "--out", out]) == 0
        capsys.readouterr()
        assert main(["report", out]) == 0
        assert "Cross-family empirical game" in capsys.readouterr().out
