"""describe_study: dry-run counts are exact, hit predictions verified.

The contract under test: for statically-enumerable studies the
description's per-phase (rounds, unique, predicted hits) numbers equal
the batch telemetry of a subsequent real run on the same engine —
cold cache, warm cache, and the cross-phase sharing cases.
"""

import numpy as np
import pytest

from repro.engine import EvaluationEngine
from repro.study import describe_study, run_study, studies

PERCENTILES = (0.0, 0.1, 0.3)


def batches(result):
    return result.engine_stats["batches"]


def assert_description_matches_run(spec, engine):
    """Predict, run, compare phase-by-phase against engine telemetry."""
    desc = describe_study(spec, engine=engine)
    result = run_study(spec, engine=engine)
    ran = batches(result)
    static_phases = [p for p in desc.phases if p.rounds is not None]
    assert len(static_phases) == len(ran)
    for phase, batch in zip(static_phases, ran):
        assert phase.n_rounds == batch["n_specs"], phase.label
        assert phase.n_unique == batch["n_unique"], phase.label
        assert phase.predicted_cache_hits == batch["cache_hits"], phase.label
    assert desc.n_rounds == result.n_rounds
    assert desc.predicted_cache_hits == result.cache_hits
    return desc, result


class TestExactPrediction:
    @pytest.mark.parametrize("make_spec", [
        lambda ctx: studies.figure1(context=ctx, percentiles=PERCENTILES,
                                    poison_fraction=0.25, n_repeats=2),
        lambda ctx: studies.empirical_game(context=ctx,
                                           percentiles=PERCENTILES),
        lambda ctx: studies.cross_game(
            context=ctx, defenses=("radius:0.1", "none"),
            attacks=("boundary:0.05", "label-flip", "clean")),
        lambda ctx: studies.mixed_eval(context=ctx,
                                       percentiles=(0.05, 0.2),
                                       probabilities=(0.5, 0.5)),
    ], ids=["figure1", "empirical_game", "cross_game", "mixed_eval"])
    def test_cold_then_warm(self, ctx_spec, make_spec):
        spec = make_spec(ctx_spec)
        engine = EvaluationEngine("serial")
        # Cold: everything predicted as a miss.
        desc, result = assert_description_matches_run(spec, engine)
        assert desc.predicted_cache_hits == 0
        assert result.rounds_computed == desc.n_unique
        # Warm: everything predicted as a hit — and the prediction
        # itself (ResultCache.contains) mutated nothing.
        desc2, result2 = assert_description_matches_run(spec, engine)
        assert desc2.predicted_cache_hits == desc2.n_unique
        assert result2.rounds_computed == 0

    def test_grid_with_shared_clean_rounds(self, ctx_spec):
        """Intra-batch duplicate keys (clean rounds across fractions)
        are modelled: unique < rounds, telemetry still matches."""
        spec = studies.grid(context=ctx_spec,
                            defenses=("radius:0.1", "none"),
                            attacks=("boundary:0.05", "clean"),
                            fractions=(0.1, 0.2))
        engine = EvaluationEngine("serial")
        desc, result = assert_description_matches_run(spec, engine)
        assert desc.n_rounds == 2 * 2 * 1 * 2
        assert desc.n_unique < desc.n_rounds  # clean cells collapse

    def test_multi_fraction_figure1_cross_phase_sharing(self, ctx_spec):
        """Phase 2 re-uses phase 1's clean rounds: predicted as hits
        even on a cold cache (sequencing-aware prediction), and counted
        once in the study-wide unique total."""
        spec = studies.figure1(context=ctx_spec, percentiles=PERCENTILES,
                               fractions=(0.1, 0.25))
        engine = EvaluationEngine("serial")
        desc, result = assert_description_matches_run(spec, engine)
        assert desc.phases[0].predicted_cache_hits == 0
        assert desc.phases[1].predicted_cache_hits == len(PERCENTILES)
        # The clean rounds shared across the two sweeps dedupe in the
        # total exactly as they do in the artifact's scenario list.
        assert desc.n_unique == result.n_unique
        assert desc.n_unique < sum(p.n_unique for p in desc.phases)

    def test_describe_rejects_what_run_rejects(self, ctx_spec):
        """A dry run must refuse multi-axis specs run_study refuses."""
        from repro.study import ScenarioGrid, StudySpec

        bad = StudySpec(kind="figure1", context=ctx_spec,
                        grid=ScenarioGrid(percentiles=PERCENTILES,
                                          victims=("svm", "logistic")))
        with pytest.raises(ValueError, match="exactly one victim"):
            describe_study(bad)
        with pytest.raises(ValueError, match="exactly one victim"):
            run_study(bad, engine=EvaluationEngine("serial"))
        bad_fraction = StudySpec(kind="empirical_game", context=ctx_spec,
                                 grid=ScenarioGrid(percentiles=PERCENTILES,
                                                   fractions=(0.1, 0.2)))
        with pytest.raises(ValueError, match="exactly one poison fraction"):
            describe_study(bad_fraction)
        empty_grid = StudySpec(kind="grid", context=ctx_spec)
        with pytest.raises(ValueError, match="non-empty"):
            describe_study(empty_grid)
        with pytest.raises(ValueError, match="non-empty"):
            run_study(empty_grid, engine=EvaluationEngine("serial"))
        no_probs = StudySpec(kind="mixed_eval", context=ctx_spec,
                             grid=ScenarioGrid(percentiles=(0.05, 0.2)))
        with pytest.raises(ValueError, match="probabilities"):
            describe_study(no_probs)
        with pytest.raises(ValueError, match="probabilities"):
            run_study(no_probs, engine=EvaluationEngine("serial"))

    def test_multi_seed_prediction(self, ctx_spec):
        spec = studies.multi_seed(context=ctx_spec, n_seeds=2,
                                  percentiles=(0.0, 0.2))
        engine = EvaluationEngine("serial")
        desc, result = assert_description_matches_run(spec, engine)
        assert len(desc.phases) == 2
        assert desc.n_rounds == 2 * 2 * 2


class TestTable1Dynamic:
    def test_counts_exact_keys_partial(self, ctx_spec):
        spec = studies.table1(context=ctx_spec, percentiles=PERCENTILES,
                              n_radii=(2, 3), poison_fraction=0.25)
        engine = EvaluationEngine("serial")
        desc = describe_study(spec, engine=engine)
        assert not desc.exact
        assert desc.predicted_cache_hits is None
        assert desc.n_unique is None
        result = run_study(spec, engine=engine)
        # Total round count is still exact: sweep + n^2 per support size.
        assert desc.n_rounds == result.n_rounds
        assert desc.phases[0].rounds is not None  # the sweep enumerates
        assert desc.phases[1].rounds is None      # Algorithm 1 decides
        assert desc.phases[1].n_rounds == 4
        assert desc.phases[2].n_rounds == 9


class TestDescribeWithoutEngine:
    def test_counts_only(self, ctx_spec):
        spec = studies.figure1(context=ctx_spec, percentiles=PERCENTILES)
        desc = describe_study(spec)
        assert desc.n_rounds == 6
        assert desc.n_unique == 6
        assert desc.predicted_cache_hits is None
        assert desc.fingerprint == spec.fingerprint()

    def test_contextless_spec_needs_context(self, study_ctx):
        spec = studies.figure1(context=None, percentiles=PERCENTILES)
        with pytest.raises(ValueError, match="no ContextSpec"):
            describe_study(spec)
        desc = describe_study(spec, context=study_ctx)
        assert desc.n_rounds == 6

    def test_formatting(self, ctx_spec):
        from repro.study import format_study_description

        spec = studies.table1(context=ctx_spec, percentiles=PERCENTILES)
        text = format_study_description(describe_study(spec))
        assert "Dry run" in text
        assert "total rounds" in text
        assert "solver" in text
