"""run_study: provenance stamps, archives, resume, rendering."""

import json
import os

import pytest

from repro.engine import EvaluationEngine, cache_schema_version
from repro.study import (archive_path, run_study, studies,
                         study_result_from_json)

PERCENTILES = (0.0, 0.1, 0.3)


def figure1_spec(ctx_spec, **kwargs):
    kwargs.setdefault("percentiles", PERCENTILES)
    kwargs.setdefault("poison_fraction", 0.25)
    return studies.figure1(context=ctx_spec, **kwargs)


class TestProvenanceStamps:
    def test_result_fields(self, ctx_spec, study_ctx):
        spec = figure1_spec(ctx_spec)
        engine = EvaluationEngine("serial")
        result = run_study(spec, engine=engine)
        assert result.kind == "figure1"
        assert result.study_fingerprint == spec.fingerprint()
        assert result.context_fingerprints == [study_ctx.fingerprint()]
        assert result.cache_schema_version == cache_schema_version()
        assert result.engine_stats["backend"] == "serial"
        assert result.n_rounds == 2 * len(PERCENTILES)
        assert result.n_unique == len(result.scenarios)
        assert result.created_at.endswith("Z")
        assert result.study == spec.to_obj()
        # Every scenario carries its key, coordinates and full outcome.
        for row in result.scenarios:
            assert len(row["key"]) == 64
            assert row["context"] == study_ctx.fingerprint()
            assert "accuracy" in row["outcome"]

    def test_spec_engine_config_used_when_no_engine_given(self, ctx_spec,
                                                          tmp_path):
        from repro.study import EngineConfig

        disk = str(tmp_path / "cache")
        spec = figure1_spec(ctx_spec,
                            engine=EngineConfig(cache_dir=disk))
        result = run_study(spec)
        assert result.rounds_computed > 0
        assert os.path.isdir(disk)

    def test_context_override(self, study_ctx):
        spec = studies.figure1(context=None, percentiles=(0.0, 0.1))
        result = run_study(spec, engine=EvaluationEngine("serial"),
                           context=study_ctx)
        assert result.study_fingerprint == spec.fingerprint(
            context_fingerprint=study_ctx.fingerprint())
        with pytest.raises(ValueError, match="no ContextSpec"):
            run_study(spec, engine=EvaluationEngine("serial"))

    def test_override_refused_when_spec_names_a_context(self, ctx_spec,
                                                        study_ctx):
        """A live override on a self-describing spec would archive one
        setting's results under the other's fingerprint — refused."""
        spec = figure1_spec(ctx_spec)
        with pytest.raises(ValueError, match="context override"):
            run_study(spec, engine=EvaluationEngine("serial"),
                      context=study_ctx)


class TestArchive:
    def test_skip_if_done(self, ctx_spec, tmp_path):
        spec = figure1_spec(ctx_spec)
        archive = str(tmp_path / "archive")
        engine = EvaluationEngine("serial")
        first = run_study(spec, engine=engine, archive_dir=archive)
        assert os.path.exists(archive_path(archive,
                                           spec.fingerprint()))
        # Second submission: served from the archive, nothing runs.
        untouched = EvaluationEngine("serial")
        second = run_study(spec, engine=untouched, archive_dir=archive)
        assert untouched.batch_log == []  # the engine never saw a round
        assert second.to_json() == first.to_json()
        # force=True re-runs (fully cached on the same engine).
        third = run_study(spec, engine=engine, archive_dir=archive,
                          force=True)
        assert third.rounds_computed == 0
        assert third.payload == first.payload

    def test_different_spec_different_archive_entry(self, ctx_spec,
                                                    tmp_path):
        archive = str(tmp_path / "archive")
        engine = EvaluationEngine("serial")
        run_study(figure1_spec(ctx_spec), engine=engine,
                  archive_dir=archive)
        run_study(figure1_spec(ctx_spec, poison_fraction=0.3),
                  engine=engine, archive_dir=archive)
        entries = [n for n in os.listdir(archive)
                   if n.startswith("study-")]
        assert len(entries) == 2


class TestResume:
    def test_warm_cache_zero_recompute(self, ctx_spec, tmp_path):
        spec = figure1_spec(ctx_spec)
        result = run_study(spec, engine=EvaluationEngine("serial"))
        # A machine that never saw the original cache: rebuild from the
        # archived artifact alone.
        path = str(tmp_path / "result.json")
        result.to_json(path)
        restored = study_result_from_json(path)
        fresh = EvaluationEngine("serial")
        injected = restored.warm_cache(fresh)
        assert injected == restored.n_unique
        rerun = run_study(spec, engine=fresh)
        assert rerun.rounds_computed == 0
        assert rerun.cache_hits == rerun.n_unique
        assert rerun.payload == result.payload

    def test_warm_cache_refuses_schema_mismatch(self, ctx_spec):
        result = run_study(figure1_spec(ctx_spec),
                           engine=EvaluationEngine("serial"))
        result.cache_schema_version += 1
        with pytest.raises(ValueError, match="schema"):
            result.warm_cache(EvaluationEngine("serial"))

    def test_warm_cache_refuses_disabled_cache(self, ctx_spec):
        result = run_study(figure1_spec(ctx_spec),
                           engine=EvaluationEngine("serial"))
        with pytest.raises(ValueError, match="disabled"):
            result.warm_cache(EvaluationEngine("serial", cache=False))

    def test_table1_resumes_through_dynamic_phases(self, ctx_spec):
        """Algorithm-1-chosen supports replay exactly from the artifact."""
        spec = studies.table1(context=ctx_spec, percentiles=PERCENTILES,
                              n_radii=(2,), poison_fraction=0.25)
        result = run_study(spec, engine=EvaluationEngine("serial"))
        restored = study_result_from_json(result.to_json())
        fresh = EvaluationEngine("serial")
        restored.warm_cache(fresh)
        rerun = run_study(spec, engine=fresh)
        assert rerun.rounds_computed == 0

        def strip_wall_time(payload):
            rows = [dict(r, data=dict(r["data"], wall_time_seconds=None))
                    for r in payload["rows"]]
            return dict(payload, rows=rows)

        # Identical modulo Algorithm 1's wall clock (a measured timing,
        # not a measured outcome).
        assert strip_wall_time(rerun.payload) == \
            strip_wall_time(result.payload)


class TestRendering:
    def test_reloaded_result_renders_identically(self, ctx_spec):
        for spec in (
            figure1_spec(ctx_spec),
            studies.empirical_game(context=ctx_spec,
                                   percentiles=PERCENTILES),
            studies.grid(context=ctx_spec,
                         defenses=("radius:0.1", "none"),
                         attacks=("boundary:0.05", "clean"),
                         fractions=(0.1, 0.2)),
        ):
            result = run_study(spec, engine=EvaluationEngine("serial"))
            restored = study_result_from_json(result.to_json())
            assert restored.render() == result.render(), spec.kind
            assert "Provenance" in result.render()

    def test_multi_fraction_figure1_payload(self, ctx_spec):
        spec = figure1_spec(ctx_spec, fractions=(0.1, 0.25))
        result = run_study(spec, engine=EvaluationEngine("serial"))
        sweeps = result.payload_object()
        assert isinstance(sweeps, list) and len(sweeps) == 2
        assert sweeps[0].poison_fraction == 0.1
        assert sweeps[1].poison_fraction == 0.25
        # Clean rounds are shared across the two sweeps via the cache.
        assert result.n_rounds == 2 * 2 * len(PERCENTILES)
        assert result.rounds_computed < result.n_rounds
        assert "Figure 1" in result.render()

    def test_progress_streams_every_round(self, ctx_spec):
        calls = []
        result = run_study(figure1_spec(ctx_spec),
                           engine=EvaluationEngine("serial"),
                           progress=lambda done, total: calls.append(
                               (done, total)))
        assert calls[-1] == (result.n_rounds, result.n_rounds)
        assert len(calls) == result.n_rounds


class TestCacheManifestProvenance:
    def test_study_fingerprint_lands_in_manifest(self, ctx_spec, tmp_path):
        from repro.engine import read_manifest, write_manifest

        disk = str(tmp_path / "cache")
        spec = figure1_spec(ctx_spec)
        engine = EvaluationEngine("serial", cache_dir=disk)
        run_study(spec, engine=engine)
        manifest = read_manifest(disk)
        assert manifest["studies"] == [spec.fingerprint()]
        # A manifest rebuild (repro-cache info) keeps the provenance.
        rebuilt = write_manifest(disk)
        assert rebuilt["studies"] == [spec.fingerprint()]
        # A second, different study appends (sorted, deduplicated).
        spec2 = figure1_spec(ctx_spec, poison_fraction=0.3)
        run_study(spec2, engine=engine)
        run_study(spec2, engine=engine)
        manifest = read_manifest(disk)
        assert manifest["studies"] == sorted(
            {spec.fingerprint(), spec2.fingerprint()})

    def test_concurrent_caches_merge_provenance(self, ctx_spec, tmp_path):
        """Two cache instances sharing a directory must not erase each
        other's study annotations (merge, not last-writer-wins)."""
        from repro.engine import ResultCache, read_manifest

        disk = str(tmp_path / "cache")
        a = ResultCache(disk_dir=disk)
        b = ResultCache(disk_dir=disk)
        a.annotate_study("aa")
        b.annotate_study("bb")  # b's copy was seeded before a wrote
        a.annotate_study("cc")
        assert read_manifest(disk)["studies"] == ["aa", "bb", "cc"]


class TestStudyResultJson:
    def test_document_shape(self, ctx_spec):
        result = run_study(figure1_spec(ctx_spec),
                           engine=EvaluationEngine("serial"))
        doc = json.loads(result.to_json())
        assert doc["type"] == "StudyResult"
        assert doc["data"]["study"]["kind"] == "figure1"

    def test_bad_documents_rejected(self):
        with pytest.raises(ValueError, match="not a StudyResult"):
            study_result_from_json(json.dumps({"type": "nope"}))
        with pytest.raises(ValueError, match="newer"):
            study_result_from_json(json.dumps(
                {"type": "StudyResult", "schema": 99, "data": {}}))
