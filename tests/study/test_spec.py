"""StudySpec: construction, canonicalisation, JSON, fingerprints."""

import pytest

from repro.engine import AttackSpec, DefenseSpec, VictimSpec
from repro.study import (STUDY_KINDS, ContextSpec, EngineConfig, ScenarioGrid,
                         StudySpec, studies, study_from_json, study_to_json)


class TestContextSpec:
    def test_defaults(self):
        c = ContextSpec()
        assert c.name == "spambase"
        assert c.seed == 0
        assert c.n_samples is None

    def test_params_canonicalise(self):
        a = ContextSpec(name="synthetic", params={"n_features": 4})
        b = ContextSpec(name="synthetic", params=(("n_features", 4),))
        assert a == b
        assert a.canonical() == b.canonical()

    def test_materialize_passes_kwargs(self):
        ctx = ContextSpec(name="synthetic", seed=3, n_samples=240,
                          params={"n_features": 3}).materialize()
        assert ctx.seed == 3
        assert ctx.X_train.shape[1] == 3

    def test_materialize_seed_override(self):
        spec = ContextSpec(name="synthetic", seed=3, n_samples=240)
        assert spec.materialize(seed=9).seed == 9

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ContextSpec(name="")
        with pytest.raises(ValueError, match="unknown context"):
            ContextSpec(name="atlantis").materialize()


class TestScenarioGrid:
    def test_spec_strings_parse(self):
        g = ScenarioGrid(defenses=("radius:0.1", "none"),
                         attacks=("boundary:0.05", "clean"),
                         victims=("logistic",))
        assert g.defenses == (DefenseSpec("radius", 0.1), None)
        assert g.attacks == (AttackSpec("boundary", 0.05), None)
        assert g.victims == (VictimSpec("logistic"),)

    def test_unknown_spec_string_rejected(self):
        with pytest.raises(ValueError, match="unknown defense kind"):
            ScenarioGrid(defenses=("fortress:0.1",))

    def test_fraction_validation(self):
        with pytest.raises(ValueError, match="poison fraction"):
            ScenarioGrid(fractions=(1.5,))
        with pytest.raises(ValueError, match="non-empty"):
            ScenarioGrid(fractions=())

    def test_single_axis_accessors(self):
        g = ScenarioGrid(percentiles=(0.0, 0.1), fractions=(0.25,))
        assert g.fraction == 0.25
        assert g.victim is None


class TestStudySpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown study kind"):
            StudySpec(kind="seance")

    def test_kind_registry_matches_runner_dispatch(self):
        from repro.study.runner import _DISPATCH

        assert set(_DISPATCH) == set(STUDY_KINDS)

    def test_builders_cover_all_kinds(self):
        from repro.study import BUILDERS

        assert set(BUILDERS) == set(STUDY_KINDS)

    def test_solver_param(self):
        spec = studies.table1(n_radii=(2, 4))
        assert spec.solver_param("n_radii") == (2, 4)
        assert spec.solver_param("missing", 7) == 7


class TestJsonRoundTrip:
    def specs(self):
        ctx = {"name": "synthetic", "seed": 2, "n_samples": 240,
               "params": {"n_features": 4}}
        return [
            studies.figure1(context=ctx, percentiles=(0.0, 0.1),
                            fractions=(0.1, 0.2)),
            studies.mixed_eval(context=ctx, percentiles=(0.05, 0.2),
                               probabilities=(0.5, 0.5)),
            studies.table1(context=ctx, percentiles=(0.0, 0.1),
                           n_radii=(2,),
                           algorithm_params={"epsilon": 1e-10}),
            studies.empirical_game(context=ctx, percentiles=(0.0, 0.1)),
            studies.cross_game(
                context=ctx,
                defenses=("radius:0.1",
                          "mixed_defense::percentiles=(0.05,0.2),"
                          "probabilities=(0.5,0.5)", "none"),
                attacks=("boundary:0.05", "label-flip::strategy=near_boundary",
                         "clean"),
                victim="logistic"),
            studies.multi_seed(context=ctx, n_seeds=2, base_seed=5,
                               percentiles=(0.0, 0.2)),
            studies.grid(context=ctx, defenses=("radius:0.1", "none"),
                         attacks=("boundary:0.05", "clean"),
                         victims=(None, "logistic"),
                         fractions=(0.1, 0.2)),
        ]

    def test_round_trip_equality_and_fingerprint(self, tmp_path):
        for i, spec in enumerate(self.specs()):
            path = str(tmp_path / f"study{i}.json")
            study_to_json(spec, path)
            loaded = study_from_json(path)
            assert loaded == spec, spec.kind
            assert loaded.fingerprint() == spec.fingerprint(), spec.kind
            # A second dump is byte-identical: the document is canonical.
            assert study_to_json(loaded) == study_to_json(spec)

    def test_fingerprint_sensitivity(self):
        base = studies.figure1(percentiles=(0.0, 0.1))
        assert base.fingerprint() != \
            studies.figure1(percentiles=(0.0, 0.2)).fingerprint()
        assert base.fingerprint() != \
            studies.figure1(percentiles=(0.0, 0.1),
                            poison_fraction=0.3).fingerprint()
        assert base.fingerprint() != studies.figure1(
            percentiles=(0.0, 0.1),
            context=ContextSpec(seed=1)).fingerprint()

    def test_fingerprint_ignores_engine_placement(self):
        a = studies.figure1(engine=EngineConfig(backend="serial"))
        b = studies.figure1(engine=EngineConfig(backend="process", jobs=4))
        c = studies.figure1()
        assert a.fingerprint() == b.fingerprint() == c.fingerprint()

    def test_contextless_spec_needs_fingerprint(self, study_ctx):
        spec = studies.figure1(context=None, percentiles=(0.0, 0.1))
        with pytest.raises(ValueError, match="context_fingerprint"):
            spec.fingerprint()
        fp = spec.fingerprint(context_fingerprint=study_ctx.fingerprint())
        assert len(fp) == 64

    def test_newer_schema_refused(self):
        text = study_to_json(studies.figure1())
        import json

        doc = json.loads(text)
        doc["schema"] = 99
        with pytest.raises(ValueError, match="newer"):
            study_from_json(json.dumps(doc))

    def test_engine_config_round_trips(self):
        spec = studies.figure1(engine=EngineConfig(
            backend="process", jobs=2, cache_dir="/tmp/x"))
        loaded = study_from_json(study_to_json(spec))
        assert loaded.engine == spec.engine

    def test_pair_tuple_param_values_round_trip_exactly(self):
        """A param value that *looks* like a mapping (a tuple of
        (str, value) pairs, in unsorted order) must round-trip without
        reordering — otherwise the fingerprint and every cache key
        would drift between a live spec and its reloaded document."""
        spec = studies.cross_game(
            defenses=(DefenseSpec("radius", 0.1,
                                  (("weights", (("b", 2), ("a", 1))),)),),
            attacks=("boundary:0.05",))
        loaded = study_from_json(study_to_json(spec))
        assert loaded == spec
        assert loaded.fingerprint() == spec.fingerprint()
        assert dict(loaded.grid.defenses[0].params)["weights"] == \
            (("b", 2), ("a", 1))

    def test_solver_mapping_values_round_trip(self):
        spec = studies.table1(algorithm_params={"epsilon": 1e-10,
                                                "max_iter": 500})
        loaded = study_from_json(study_to_json(spec))
        assert loaded == spec
        assert dict(loaded.solver_param("algorithm")) == \
            {"epsilon": 1e-10, "max_iter": 500}
