"""Fixtures for the telemetry suite.

Telemetry state is a process-wide lazy singleton driven by environment
variables, so every test starts and ends from a clean slate: env vars
scrubbed, module state dropped.  Tests that want telemetry armed call
``telemetry.configure(...)`` themselves (which re-exports the env for
any subprocesses they spawn).
"""

import os

import pytest

from repro import telemetry


@pytest.fixture(autouse=True)
def _clean_telemetry():
    """Scrub env + module state around every test (configure() writes
    os.environ directly, so monkeypatch alone would not cover it)."""
    saved = {name: os.environ.pop(name, None)
             for name in ("REPRO_TELEMETRY_DIR", "REPRO_TELEMETRY")}
    telemetry.reset()
    yield
    telemetry.reset()
    for name, value in saved.items():
        if value is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = value
