"""SIGKILL chaos for the JSONL sink: at most the final partial line lost."""

import json
import os
import signal
import subprocess
import sys
import time

SCRIPT = r"""
import sys
from repro import telemetry

telemetry.configure(sys.argv[1])
n = 0
while True:
    with telemetry.trace_span("chaos", n=n):
        pass
    n += 1
    if n == 50:
        print("GOING", flush=True)  # parent may kill us any time now
"""


def test_sigkill_loses_at_most_the_partial_tail(tmp_path):
    trace_dir = str(tmp_path / "trace")
    env = dict(os.environ)
    import repro

    env["PYTHONPATH"] = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__))) + os.pathsep + \
        env.get("PYTHONPATH", "")
    proc = subprocess.Popen([sys.executable, "-c", SCRIPT, trace_dir],
                            env=env, stdout=subprocess.PIPE, text=True)
    try:
        assert proc.stdout.readline().strip() == "GOING"
        time.sleep(0.05)  # let it write mid-stream
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    (name,) = os.listdir(trace_dir)
    complete, partial = 0, 0
    with open(os.path.join(trace_dir, name), encoding="utf-8") as fh:
        for line in fh:
            try:
                event = json.loads(line)
            except ValueError:
                partial += 1
                continue
            assert event["event"] == "span"
            assert event["name"] == "chaos"
            complete += 1
    # Every line up to the kill instant survived intact; per-line
    # flushes bound the loss to the one line being written.
    assert complete >= 50
    assert partial <= 1

    # The viewer applies the same tolerance.
    from repro.telemetry.viewer import load_trace_dir

    trace = load_trace_dir(trace_dir)
    assert len(trace["spans"]) == complete
    assert trace["skipped_lines"] == partial
