"""The telemetry CLI surface: --telemetry-dir, repro trace, report
--telemetry, repro-cluster stats, and resume-aware progress counts."""

import threading

import pytest

from repro import telemetry
from repro.experiments.cli import main

SMALL = ["--set", "context=synthetic", "--set", "n_samples=240",
         "--set", "percentiles=0.0,0.1,0.3", "--no-progress"]


class TestTraceWorkflow:
    def test_run_trace_and_report(self, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        trace_dir = str(tmp_path / "trace")
        assert main(["run", "figure1"] + SMALL +
                    ["--out", out, "--telemetry-dir", trace_dir]) == 0
        capsys.readouterr()
        telemetry.reset()  # close the sink: flushes the counters event

        assert main(["trace", trace_dir]) == 0
        rendered = capsys.readouterr().out
        assert "study" in rendered and "fit" in rendered
        assert "engine.rounds_total" in rendered

        assert main(["report", out, "--telemetry"]) == 0
        reported = capsys.readouterr().out
        assert "per-stage breakdown" in reported
        assert "fit" in reported

    def test_trace_missing_directory_fails_cleanly(self, tmp_path):
        with pytest.raises(SystemExit, match="no such telemetry"):
            main(["trace", str(tmp_path / "absent")])

    def test_report_without_telemetry_says_so(self, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        assert main(["run", "figure1"] + SMALL + ["--out", out]) == 0
        capsys.readouterr()
        assert main(["report", out, "--telemetry"]) == 0
        assert "no telemetry in this result" in capsys.readouterr().out


class TestClusterStats:
    def test_probes_a_live_shard(self, capsys):
        from repro.cluster.server import ShardServer
        from repro.experiments.runner import make_synthetic_context

        telemetry.configure(metrics_only=True)
        server = ShardServer(
            make_synthetic_context(seed=3, n_samples=140, n_features=3),
            port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            code = main(["repro-cluster", "stats", "--shards",
                         f"{server.host}:{server.port}"])
        finally:
            server.close()
            thread.join(timeout=5.0)
        out = capsys.readouterr().out
        assert code == 0
        assert "telemetry enabled" in out

    def test_unreachable_shard_reported(self, capsys):
        assert main(["repro-cluster", "stats",
                     "--shards", "127.0.0.1:1"]) == 1
        assert "unreachable" in capsys.readouterr().out

    def test_stats_needs_addresses(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(["repro-cluster", "stats"])


class TestResumeProgress:
    def test_progress_counts_include_checkpointed_rounds(self, tmp_path):
        from repro.engine import EvaluationEngine
        from repro.study import run_study, studies

        spec = studies.figure1(
            context={"name": "synthetic", "n_samples": 240},
            percentiles=(0.0, 0.1, 0.3))
        archive = str(tmp_path / "archive")

        class Abort(RuntimeError):
            pass

        def abort_after(done, total):
            if done >= 3:
                raise Abort

        # Kill the first run mid-sweep; the checkpoint keeps its rounds.
        with pytest.raises(Abort):
            run_study(spec, engine=EvaluationEngine("serial"),
                      archive_dir=archive, checkpoint_every=1,
                      progress=abort_after)

        # The resumed run streams the checkpointed rounds as cache hits
        # first: done/total cover the full study from the start, count
        # monotonically through the resumed rounds, and never restart
        # from zero.
        calls: list = []
        result = run_study(
            spec, engine=EvaluationEngine("serial"),
            archive_dir=archive, resume=True, checkpoint_every=1,
            progress=lambda done, total: calls.append((done, total)))
        resumed = result.extras.get("resumed_scenarios", 0)
        assert resumed >= 3
        total = calls[-1][1]
        assert calls[-1] == (total, total)
        assert total == result.n_rounds
        assert [c[0] for c in calls] == list(range(1, total + 1))
