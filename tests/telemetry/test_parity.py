"""Telemetry parity across backends, and bit-identity when disabled.

The same StudySpec must produce the same *shape* of telemetry whether
its rounds run serially, in a process pool (worker deltas merged by the
parent) or on the cluster (shard deltas piggybacked on chunk results).
Stage counts for attack/defense/payoff are exact — one per computed
round — while ``fit`` span *counts* legitimately differ: the batched
fit_many path groups rounds per chunk, and chunking depends on the
backend.  Disabled telemetry must leave no trace at all: no provenance
key, no files, and a bit-identical StudyResult.
"""

import json

import pytest

from repro import telemetry
from repro.engine import EvaluationEngine
from repro.study import run_study, studies

CONTEXT = {"name": "synthetic", "n_samples": 240}
PERCENTILES = (0.0, 0.1, 0.3)


def _spec():
    return studies.figure1(context=CONTEXT, percentiles=PERCENTILES)


def _run_with_telemetry(engine):
    telemetry.reset()
    telemetry.configure(metrics_only=True)
    try:
        result = run_study(_spec(), engine=engine)
    finally:
        close = getattr(engine.backend, "close", None)
        if close is not None:
            close()
    summary = result.extras["telemetry"]
    telemetry.configure()  # disarm + scrub env before the next backend
    return result, summary


class TestBackendParity:
    def test_serial_process_cluster_agree(self):
        serial_result, serial = _run_with_telemetry(
            EvaluationEngine("serial"))
        _, process = _run_with_telemetry(
            EvaluationEngine("process", jobs=2))
        cluster_result, cluster = _run_with_telemetry(
            EvaluationEngine("cluster", jobs=2))

        # The numbers themselves are backend-independent.
        assert cluster_result.payload == serial_result.payload

        for summary in (serial, process, cluster):
            assert summary["schema"] == telemetry.SUMMARY_SCHEMA_VERSION
            # Exactly one span per computed round for the per-round
            # stages, whichever tier executed them.
            for stage in ("attack", "defense", "payoff"):
                assert summary["stages"][stage]["count"] == \
                    serial["stages"][stage]["count"], stage
            # fit spans exist but their count is grouping-dependent.
            assert summary["stages"]["fit"]["count"] >= 1
            assert summary["counters"]["engine.rounds_total"] == \
                serial["counters"]["engine.rounds_total"]

    def test_cluster_chunk_latency_histogram_lands_clientside(self):
        telemetry.reset()
        telemetry.configure(metrics_only=True)
        engine = EvaluationEngine("cluster", jobs=2)
        try:
            run_study(_spec(), engine=engine)
            snap = telemetry.snapshot()
        finally:
            engine.backend.close()
            telemetry.configure()
        assert snap["histograms"]["cluster.chunk.seconds"]["count"] >= 1


class TestDisabledBitIdentity:
    def test_no_provenance_key_and_no_files(self, tmp_path):
        result = run_study(_spec(), engine=EvaluationEngine("serial"))
        assert "telemetry" not in result.extras
        assert list(tmp_path.iterdir()) == []

    def test_disabled_result_bit_identical_to_enabled_fingerprint(
            self, tmp_path):
        disabled = run_study(_spec(), engine=EvaluationEngine("serial"))

        telemetry.configure(metrics_only=True)
        enabled = run_study(_spec(), engine=EvaluationEngine("serial"))
        telemetry.configure()

        # Identical fingerprints: telemetry never enters the identity.
        assert enabled.study_fingerprint == disabled.study_fingerprint
        assert enabled.payload == disabled.payload

        # And two disabled runs are bit-identical on disk (timings and
        # timestamps normalised away, as the archive round-trip does).
        again = run_study(_spec(), engine=EvaluationEngine("serial"))
        a, b = (str(tmp_path / "a.json"), str(tmp_path / "b.json"))
        disabled.to_json(a)
        again.to_json(b)

        def normalised(path):
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh).get("data", {})
            for volatile in ("wall_time_seconds", "created_at"):
                data.pop(volatile, None)
            for batch in data.get("engine_stats", {}).get("batches", []):
                batch.pop("seconds", None)
            return data

        assert normalised(a) == normalised(b)
