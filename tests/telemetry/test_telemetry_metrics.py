"""The metrics registry: instruments, snapshots, the delta discipline."""

import threading

from repro.telemetry.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                                     NOOP_COUNTER, NOOP_GAUGE,
                                     NOOP_HISTOGRAM, diff_snapshots)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(4)
        assert reg.counter("a").value == 5
        # Same name -> same instrument.
        assert reg.counter("a") is reg.counter("a")

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(3)
        reg.gauge("g").set(1.5)
        assert reg.gauge("g").value == 1.5

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0, 3.0):
            h.observe(v)
        assert h.counts == [1, 1, 2]  # final slot is the +Inf bucket
        assert h.count == 4
        assert abs(h.sum - 5.55) < 1e-9

    def test_default_buckets_span_micro_to_minutes(self):
        assert DEFAULT_BUCKETS[0] <= 1e-4
        assert DEFAULT_BUCKETS[-1] >= 60.0

    def test_thread_safety_under_contention(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("n").inc()
                reg.histogram("h").observe(0.001)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("n").value == 8000
        assert reg.histogram("h").count == 8000


class TestSnapshotAndDelta:
    def test_snapshot_is_json_plain(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(0.01)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 1}
        assert snap["gauges"] == {"g": 2.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_flush_delta_none_when_quiet(self):
        reg = MetricsRegistry()
        assert reg.flush_delta() is None
        reg.counter("c").inc()
        assert reg.flush_delta() == {"counters": {"c": 1}}
        # Watermark advanced: nothing new to ship.
        assert reg.flush_delta() is None
        reg.counter("c").inc(2)
        assert reg.flush_delta() == {"counters": {"c": 2}}

    def test_gauges_never_travel_in_deltas(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(7.0)
        assert reg.flush_delta() is None

    def test_merge_adds_counters_and_histograms(self):
        worker, client = MetricsRegistry(), MetricsRegistry()
        worker.counter("c").inc(3)
        worker.histogram("h", buckets=(1.0,)).observe(0.5)
        client.counter("c").inc(1)
        client.merge(worker.flush_delta())
        assert client.counter("c").value == 4
        merged = client.histogram("h", buckets=(1.0,))
        assert merged.count == 1 and merged.counts == [1, 0]

    def test_merge_survives_boundary_mismatch(self):
        client = MetricsRegistry()
        client.histogram("h", buckets=(1.0,)).observe(0.5)
        client.merge({"histograms": {"h": {
            "buckets": [0.1, 0.2, 0.3], "counts": [1, 0, 0, 1],
            "sum": 0.4, "count": 2}}})
        h = client.histogram("h", buckets=(1.0,))
        assert h.count == 3  # sum/count kept even when shapes differ
        assert abs(h.sum - 0.9) < 1e-9

    def test_diff_snapshots_scopes_to_the_window(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.histogram("h").observe(0.1)
        before = reg.snapshot()
        reg.counter("c").inc(2)
        reg.histogram("h").observe(0.2)
        diff = diff_snapshots(before, reg.snapshot())
        assert diff["counters"] == {"c": 2}
        assert diff["histograms"]["h"]["count"] == 1
        assert abs(diff["histograms"]["h"]["sum"] - 0.2) < 1e-9


class TestNoops:
    def test_noop_instruments_accept_calls(self):
        NOOP_COUNTER.inc()
        NOOP_COUNTER.inc(10)
        NOOP_GAUGE.set(1.0)
        NOOP_HISTOGRAM.observe(0.5)
        assert NOOP_COUNTER.value == 0
        assert NOOP_HISTOGRAM.count == 0

    def test_noops_are_shared_singletons(self):
        from repro import telemetry

        # Disabled (conftest scrubbed the env): every name returns the
        # same shared object — the zero-allocation disabled path.
        assert telemetry.counter("x") is telemetry.counter("y")
        assert telemetry.counter("x") is NOOP_COUNTER
        assert telemetry.histogram("x") is NOOP_HISTOGRAM
        assert telemetry.gauge("x") is NOOP_GAUGE
