"""Spans: nesting, sink events, the span.<name>.seconds histograms."""

import json
import os

import pytest

from repro import telemetry
from repro.telemetry.tracing import NOOP_SPAN


def _read_events(directory):
    events = []
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), encoding="utf-8") as fh:
            events += [json.loads(line) for line in fh if line.strip()]
    return events


class TestDisabled:
    def test_disabled_returns_shared_noop_span(self):
        span = telemetry.trace_span("fit", rounds=3)
        assert span is NOOP_SPAN
        with span as s:
            assert s is NOOP_SPAN

    def test_disabled_writes_nothing(self, tmp_path):
        with telemetry.trace_span("fit"):
            pass
        assert list(tmp_path.iterdir()) == []
        assert telemetry.snapshot()["histograms"] == {}


class TestEnabled:
    def test_span_feeds_stage_histogram(self):
        telemetry.configure(metrics_only=True)
        with telemetry.trace_span("fit"):
            pass
        with telemetry.trace_span("fit"):
            pass
        hist = telemetry.snapshot()["histograms"]["span.fit.seconds"]
        assert hist["count"] == 2
        assert hist["sum"] >= 0.0

    def test_nested_spans_link_parents(self, tmp_path):
        telemetry.configure(str(tmp_path))
        with telemetry.trace_span("outer"):
            with telemetry.trace_span("inner", step=1):
                pass
        telemetry.reset()  # closes the sink
        events = _read_events(tmp_path)
        spans = {e["name"]: e for e in events if e["event"] == "span"}
        # End-emission: the child's line precedes the parent's.
        assert [e["name"] for e in events if e["event"] == "span"] == \
            ["inner", "outer"]
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["span"]
        assert spans["inner"]["attrs"] == {"step": 1}
        assert spans["inner"]["pid"] == os.getpid()
        assert spans["inner"]["dur"] >= 0.0

    def test_sibling_spans_share_a_parent(self, tmp_path):
        telemetry.configure(str(tmp_path))
        with telemetry.trace_span("batch"):
            with telemetry.trace_span("fit"):
                pass
            with telemetry.trace_span("payoff"):
                pass
        telemetry.reset()
        spans = {e["name"]: e for e in _read_events(tmp_path)
                 if e["event"] == "span"}
        assert spans["fit"]["parent"] == spans["batch"]["span"]
        assert spans["payoff"]["parent"] == spans["batch"]["span"]

    def test_exception_recorded_and_propagated(self, tmp_path):
        telemetry.configure(str(tmp_path))
        with pytest.raises(RuntimeError):
            with telemetry.trace_span("fit"):
                raise RuntimeError("boom")
        telemetry.reset()
        (span,) = [e for e in _read_events(tmp_path)
                   if e["event"] == "span"]
        assert span["error"] == "RuntimeError"

    def test_metrics_only_mode_has_no_sink(self, tmp_path):
        telemetry.configure(metrics_only=True)
        with telemetry.trace_span("fit"):
            pass
        assert telemetry.enabled()
        assert telemetry.trace_dir() is None
        assert list(tmp_path.iterdir()) == []

    def test_unserialisable_attr_never_raises(self, tmp_path):
        telemetry.configure(str(tmp_path))
        with telemetry.trace_span("fit", bad=object()):
            pass
        telemetry.reset()
        # The offending line is dropped, not the process.
        assert all(e["event"] != "span" or e["name"] != "fit"
                   for e in _read_events(tmp_path))


class TestSummary:
    def test_summary_derives_stages_from_histograms(self):
        telemetry.configure(metrics_only=True)
        with telemetry.trace_span("fit"):
            pass
        telemetry.counter("cache.misses").inc(3)
        summary = telemetry.summary()
        assert summary["schema"] == telemetry.SUMMARY_SCHEMA_VERSION
        assert summary["stages"]["fit"]["count"] == 1
        assert summary["counters"]["cache.misses"] == 3

    def test_summary_since_scopes_to_the_window(self):
        telemetry.configure(metrics_only=True)
        with telemetry.trace_span("fit"):
            pass
        since = telemetry.snapshot()
        with telemetry.trace_span("fit"):
            pass
        summary = telemetry.summary(since=since)
        assert summary["stages"]["fit"]["count"] == 1
