"""The trace directory loader and `repro trace` tree renderer."""

import json

import pytest

from repro.telemetry.viewer import (format_span_tree, load_trace_dir,
                                    render_trace)


def _write_jsonl(path, events, tail: str | None = None):
    with open(path, "w", encoding="utf-8") as fh:
        for event in events:
            fh.write(json.dumps(event) + "\n")
        if tail is not None:
            fh.write(tail)  # crash-truncated partial line


SPANS = [
    {"event": "span", "name": "fit", "pid": 7, "span": 2, "parent": 1,
     "ts": 10.5, "dur": 0.004, "attrs": {"rounds": 3}},
    {"event": "span", "name": "batch", "pid": 7, "span": 1,
     "parent": None, "ts": 10.0, "dur": 0.02},
]


class TestLoad:
    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_trace_dir(str(tmp_path / "absent"))

    def test_partial_tail_skipped_not_fatal(self, tmp_path):
        _write_jsonl(tmp_path / "trace-7-x.jsonl", SPANS,
                     tail='{"event":"span","name":"pay')
        trace = load_trace_dir(str(tmp_path))
        assert len(trace["spans"]) == 2
        assert trace["skipped_lines"] == 1

    def test_merges_all_files(self, tmp_path):
        _write_jsonl(tmp_path / "trace-7-a.jsonl", SPANS)
        _write_jsonl(tmp_path / "trace-8-b.jsonl", [
            {"event": "metrics", "pid": 8, "ts": 11.0,
             "metrics": {"counters": {"cache.misses": 4}}}])
        trace = load_trace_dir(str(tmp_path))
        assert trace["files"] == 2
        assert len(trace["metrics"]) == 1


class TestRender:
    def test_tree_nests_by_parent_links(self, tmp_path):
        _write_jsonl(tmp_path / "trace-7-a.jsonl", SPANS)
        lines = format_span_tree(load_trace_dir(str(tmp_path))["spans"])
        assert lines[0].strip().startswith("batch")
        # The child renders one level deeper than its parent.
        assert lines[1].startswith("    fit")
        assert "[rounds=3]" in lines[1]

    def test_render_trace_groups_by_process(self, tmp_path):
        _write_jsonl(tmp_path / "trace-7-a.jsonl", SPANS)
        _write_jsonl(tmp_path / "trace-8-b.jsonl", [
            {"event": "span", "name": "shard.chunk", "pid": 8, "span": 1,
             "parent": None, "ts": 10.2, "dur": 0.01},
            {"event": "metrics", "pid": 8, "ts": 11.0,
             "metrics": {"counters": {"shard.rounds_total": 9}}}])
        out = render_trace(str(tmp_path))
        assert "process 7" in out and "process 8" in out
        assert "shard.chunk" in out
        assert "shard.rounds_total = 9" in out
        assert render_trace(str(tmp_path), metrics=False).count(
            "shard.rounds_total") == 0

    def test_empty_directory_reports_itself(self, tmp_path):
        out = render_trace(str(tmp_path))
        assert "no telemetry events" in out
