"""Public API surface tests.

Every name exported through ``__all__`` must be importable and real —
these tests catch dangling exports whenever modules are refactored.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.gametheory",
    "repro.ml",
    "repro.data",
    "repro.attacks",
    "repro.defenses",
    "repro.engine",
    "repro.experiments",
    "repro.utils",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), f"{package} must define __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.__all__ exports missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


def test_top_level_version():
    import repro

    major, minor, patch = repro.__version__.split(".")
    assert all(part.isdigit() for part in (major, minor, patch))


def test_public_classes_have_docstrings():
    """Every exported class/function carries a docstring."""
    for package in PACKAGES:
        module = importlib.import_module(package)
        for name in module.__all__:
            obj = getattr(module, name)
            if callable(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"
