"""Tests for the logging helpers."""

import json
import logging

from repro.utils.logging import (configure_console_logging,
                                 configure_json_logging, get_logger)


class TestGetLogger:
    def test_library_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger_name(self):
        assert get_logger("experiments").name == "repro.experiments"

    def test_children_propagate_to_library_logger(self):
        child = get_logger("core")
        assert child.parent.name.startswith("repro")


class TestConfigureConsoleLogging:
    def test_attaches_stream_handler(self):
        logger = configure_console_logging()
        assert any(isinstance(h, logging.StreamHandler) for h in logger.handlers)

    def test_idempotent(self):
        before = len(configure_console_logging().handlers)
        after = len(configure_console_logging().handlers)
        assert before == after

    def test_level_applied(self):
        logger = configure_console_logging(level=logging.WARNING)
        assert logger.level == logging.WARNING
        configure_console_logging(level=logging.INFO)  # restore

    def test_messages_flow(self, caplog):
        logger = get_logger("test-flow")
        with caplog.at_level(logging.INFO, logger="repro.test-flow"):
            logger.info("hello from the library")
        assert "hello from the library" in caplog.text


class TestConfigureJsonLogging:
    def _json_handlers(self, logger):
        from repro.utils.logging import _JsonFormatter

        return [h for h in logger.handlers
                if isinstance(h.formatter, _JsonFormatter)]

    def _teardown(self, logger):
        for handler in self._json_handlers(logger):
            logger.removeHandler(handler)

    def test_one_json_object_per_line(self):
        logger = configure_json_logging()
        try:
            (handler,) = self._json_handlers(logger)
            record = logging.LogRecord("repro.svc", logging.WARNING,
                                       "f.py", 10, "queue %s", ("deep",),
                                       None)
            doc = json.loads(handler.format(record))
            assert doc["level"] == "WARNING"
            assert doc["logger"] == "repro.svc"
            assert doc["message"] == "queue deep"
            # ISO-8601 UTC with millisecond precision.
            assert doc["ts"].endswith("Z") and "T" in doc["ts"]
        finally:
            self._teardown(logger)

    def test_extra_fields_emitted(self):
        logger = configure_json_logging()
        try:
            (handler,) = self._json_handlers(logger)
            record = logging.LogRecord("repro", logging.INFO, "f.py", 1,
                                       "m", (), None)
            record.shard = "127.0.0.1:9"
            record.weird = object()  # unserialisable -> repr, not a crash
            doc = json.loads(handler.format(record))
            assert doc["shard"] == "127.0.0.1:9"
            assert "object object" in doc["weird"]
        finally:
            self._teardown(logger)

    def test_idempotent_and_console_untouched(self):
        logger = configure_console_logging()
        console_before = list(logger.handlers)
        configure_json_logging()
        configure_json_logging()
        try:
            assert len(self._json_handlers(logger)) == 1
            for handler in console_before:
                assert handler in logger.handlers
        finally:
            self._teardown(logger)
