"""Tests for the logging helpers."""

import logging

from repro.utils.logging import configure_console_logging, get_logger


class TestGetLogger:
    def test_library_logger_name(self):
        assert get_logger().name == "repro"

    def test_child_logger_name(self):
        assert get_logger("experiments").name == "repro.experiments"

    def test_children_propagate_to_library_logger(self):
        child = get_logger("core")
        assert child.parent.name.startswith("repro")


class TestConfigureConsoleLogging:
    def test_attaches_stream_handler(self):
        logger = configure_console_logging()
        assert any(isinstance(h, logging.StreamHandler) for h in logger.handlers)

    def test_idempotent(self):
        before = len(configure_console_logging().handlers)
        after = len(configure_console_logging().handlers)
        assert before == after

    def test_level_applied(self):
        logger = configure_console_logging(level=logging.WARNING)
        assert logger.level == logging.WARNING
        configure_console_logging(level=logging.INFO)  # restore

    def test_messages_flow(self, caplog):
        logger = get_logger("test-flow")
        with caplog.at_level(logging.INFO, logger="repro.test-flow"):
            logger.info("hello from the library")
        assert "hello from the library" in caplog.text
