"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(7).random(5)
        b = as_generator(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_generator(1).random(5), as_generator(2).random(5))

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_numpy_integer_seed(self):
        gen = as_generator(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_invalid_seed_raises(self):
        with pytest.raises(TypeError, match="seed"):
            as_generator("not-a-seed")

    def test_float_seed_raises(self):
        with pytest.raises(TypeError):
            as_generator(1.5)


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 4)) == 4

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)

    def test_children_are_independent(self):
        a, b = spawn_generators(0, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_deterministic_given_seed(self):
        a1, _ = spawn_generators(3, 2)
        a2, _ = spawn_generators(3, 2)
        np.testing.assert_array_equal(a1.random(5), a2.random(5))


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "exp", 0) == derive_seed(7, "exp", 0)

    def test_labels_matter(self):
        assert derive_seed(7, "exp", 0) != derive_seed(7, "exp", 1)

    def test_base_matters(self):
        assert derive_seed(7, "exp") != derive_seed(8, "exp")

    def test_fits_in_63_bits(self):
        for i in range(50):
            assert 0 <= derive_seed(i, "x") < 2**63

    def test_mixed_label_types(self):
        assert derive_seed(1, "a", 2, 3.5) == derive_seed(1, "a", 2, 3.5)
