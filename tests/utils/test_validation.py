"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_array,
    check_fraction,
    check_positive_int,
    check_probability_vector,
    check_sorted_increasing,
    check_X_y,
)


class TestCheckArray:
    def test_accepts_valid(self):
        out = check_array([[1.0, 2.0], [3.0, 4.0]])
        assert out.shape == (2, 2)
        assert out.dtype == float

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_array(np.empty((0, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[1.0, np.nan]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="weights"):
            check_array([1.0], ndim=2, name="weights")


class TestCheckXy:
    def test_accepts_01_labels(self):
        X, y = check_X_y([[1.0], [2.0]], [0, 1])
        assert set(y) <= {0, 1}

    def test_accepts_signed_labels(self):
        _, y = check_X_y([[1.0], [2.0]], [-1, 1])
        assert set(y) <= {-1, 1}

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError, match="inconsistent"):
            check_X_y([[1.0], [2.0]], [0, 1, 1])

    def test_rejects_multiclass(self):
        with pytest.raises(ValueError, match="binary"):
            check_X_y([[1.0], [2.0], [3.0]], [0, 1, 2])

    def test_rejects_2d_y(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_X_y([[1.0], [2.0]], [[0], [1]])


class TestCheckFraction:
    def test_accepts_bounds(self):
        assert check_fraction(0.0) == 0.0
        assert check_fraction(1.0) == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValueError):
            check_fraction(0.0, inclusive_low=False)

    def test_exclusive_high(self):
        with pytest.raises(ValueError):
            check_fraction(1.0, inclusive_high=False)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5)
        with pytest.raises(ValueError):
            check_fraction(-0.1)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_fraction(float("nan"))


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3) == 3

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(0)
        with pytest.raises(ValueError):
            check_positive_int(-2)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True)

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int32(4)) == 4


class TestCheckProbabilityVector:
    def test_accepts_valid(self):
        p = check_probability_vector([0.25, 0.75])
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_renormalises_tiny_drift(self):
        p = check_probability_vector([0.5 + 1e-9, 0.5])
        np.testing.assert_allclose(p.sum(), 1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector([-0.1, 1.1])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector([0.2, 0.2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector([])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            check_probability_vector([[0.5, 0.5]])


class TestCheckSortedIncreasing:
    def test_accepts_strictly_increasing(self):
        out = check_sorted_increasing([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_ties_when_strict(self):
        with pytest.raises(ValueError, match="strictly"):
            check_sorted_increasing([1.0, 1.0, 2.0])

    def test_allows_ties_when_not_strict(self):
        check_sorted_increasing([1.0, 1.0, 2.0], strict=False)

    def test_rejects_decreasing(self):
        with pytest.raises(ValueError):
            check_sorted_increasing([3.0, 2.0], strict=False)

    def test_single_element_ok(self):
        check_sorted_increasing([5.0])
